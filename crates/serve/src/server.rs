//! The mapping server: hardened ingress, per-client fair queueing and
//! admission control, supervised batching worker pool, deadline shedding,
//! hot index reload, graceful shutdown.
//!
//! Threading model (DESIGN.md §10–§11, §16):
//!
//! * **accept thread** — owns the listener. It only accepts: each
//!   connection is handed to a per-connection handler thread, bounded by
//!   `max_conns` (past the cap the connection is answered
//!   [`Response::Busy`] and closed — the server never accumulates
//!   unbounded sockets).
//! * **handler threads** (one per live connection) — read request frames
//!   (any protocol revision), answer `Ping`/`Info` inline, and admit
//!   `Map`/`MapPartial` jobs through three composed gates: a
//!   per-connection in-flight cap (`max_inflight`), per-client
//!   token-bucket quotas ([`AdmissionControl`], rejecting
//!   [`Response::Throttled`] for v3 peers and `Busy` for older revisions
//!   that cannot decode it — a request the queue then refuses is refunded,
//!   so rejected work is never charged), and the per-client
//!   deficit-round-robin queue ([`FairQueue`], `Busy` when the client's
//!   lane is full). `Reload` goes to a one-off loader thread so a slow
//!   index load never blocks admission; `Shutdown` flips the flag and
//!   wakes the accept loop. A peer that holds the socket open without
//!   sending (half-open, slow-loris) is reaped after `idle_timeout`
//!   (`serve.reaped_idle`) — before it pins the handler forever; stalling
//!   mid-frame is reaped on the `io_timeout`. Connections that spoke
//!   `JEMSRV3` are kept alive for further requests; v1/v2 connections
//!   keep their one-request lifecycle byte-for-byte.
//! * **worker threads** (supervised pool) — each owns one reused
//!   [`LazyHitCounter`](jem_index::LazyHitCounter) and a running query-id;
//!   workers pop up to `batch` queued requests per index pass (the fair
//!   queue interleaves lanes, so one greedy client cannot monopolize a
//!   pass), shed the ones whose deadline has already expired
//!   ([`Response::Expired`], `serve.shed`), map the rest with the one
//!   counter, and write each response back on its own connection. The
//!   wire protocol carries no correlation id, so a keep-alive connection's
//!   responses go through a per-connection [`ConnWriter`] that restores
//!   *request order*: an answer finishing ahead of an earlier request's
//!   answer (separate batches complete out of order, and rejections
//!   complete inline) is buffered until everything before it is on the
//!   wire — a pipelining v3 peer matches responses to requests
//!   positionally, never misattributed.
//! * **supervisor thread** — owns the worker pool. Each worker's request
//!   loop runs under `catch_unwind`; a panicking worker fails its
//!   in-flight batch with an `Error` reply (a guard holds the connection
//!   handles, so the clients are answered, never hung), the panic is
//!   counted (`serve.worker_panic`), and the supervisor respawns a
//!   replacement (`serve.worker_respawns`) so pool capacity never decays.
//! * **index epochs** — the served [`ShardedIndex`] lives behind an
//!   `RwLock`ed, `Arc`-swapped epoch. Workers pin the current epoch per
//!   batch, so a [`Request::Reload`](crate::Request) swap lands atomically
//!   between batches and a failed load leaves the old epoch serving.
//! * **shutdown** — [`ServerHandle::shutdown`] (or a remote
//!   [`crate::Request::Shutdown`]) flips the flag, wakes the accept loop,
//!   closes the queue; workers drain everything already queued, so every
//!   admitted request is answered, then exit.
//!
//! All instrumentation flows through one [`MetricsRecorder`] owned by the
//! server (not the process-global recorder): a resident service snapshots
//! its own lifetime without racing other pipelines in the process, and
//! tests can run many servers concurrently.
//!
//! [`AdmissionControl`]: crate::AdmissionControl
//! [`FairQueue`]: crate::FairQueue

use crate::admission::{AdmissionControl, QuotaConfig};
use crate::protocol::{
    read_frame_versioned, write_frame_versioned, ProtocolVersion, Request, Response,
    SegmentPartials, ServerInfo,
};
use crate::queue::{FairQueue, PushError};
use crate::shard::ShardedIndex;
use crate::ServeError;
use jem_core::{MapScratch, QuerySegment};
use jem_obs::{MetricsRecorder, Recorder, Snapshot, Span};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many distinct client lanes the fair queue keeps before further ids
/// collapse into the shared anonymous lane — the same bounded-memory
/// posture as [`admission::MAX_TRACKED_CLIENTS`](crate::admission::MAX_TRACKED_CLIENTS).
const MAX_LANES: usize = 256;

/// Tuning knobs of a [`start`]ed server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads mapping queued requests (≥ 1).
    pub workers: usize,
    /// Bounded request-queue capacity *per client lane*; a full lane
    /// answers `Busy` (≥ 1). A single-client workload sees exactly the
    /// old global bound.
    pub queue_cap: usize,
    /// Max queued requests a worker folds into one index pass (≥ 1).
    pub batch: usize,
    /// Per-connection socket timeout while a frame is in flight.
    pub io_timeout: Duration,
    /// How long a connection may sit idle between frames before it is
    /// reaped (half-open / slow-loris defense). Applies from accept: a
    /// peer that connects and never sends is closed after this long.
    pub idle_timeout: Duration,
    /// Max simultaneous live connections; past the cap new connections
    /// are answered `Busy` and closed instead of pinning another handler
    /// thread (≥ 1).
    pub max_conns: usize,
    /// Max in-flight (admitted, unanswered) requests per connection; a
    /// pipelining peer past the cap is answered `Busy` (≥ 1).
    pub max_inflight: usize,
    /// Per-client admission quota. `rate == 0.0` (the default) disables
    /// admission control entirely.
    pub quota: QuotaConfig,
    /// Chaos knob (same spirit as `jem-psim`'s straggle fault): every
    /// worker sleeps this long before each index pass. `0` = off. Used by
    /// the saturation and drain tests to hold the queue full
    /// deterministically.
    pub straggle_ms: u64,
    /// Chaos knob (the serve-side twin of `jem-psim`'s crash fault): the
    /// pool panics on every Nth index pass, counted across all workers.
    /// `0` = off. The chaos suite uses this to prove the supervisor
    /// restores pool capacity and no client is left hanging.
    pub panic_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            batch: 16,
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(2),
            max_conns: 256,
            max_inflight: 32,
            quota: QuotaConfig::default(),
            straggle_ms: 0,
            panic_every: 0,
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), ServeError> {
        for (name, v) in [
            ("workers", self.workers),
            ("queue_cap", self.queue_cap),
            ("batch", self.batch),
            ("max_conns", self.max_conns),
            ("max_inflight", self.max_inflight),
        ] {
            if v == 0 {
                return Err(ServeError::Config(format!("{name} must be at least 1")));
            }
        }
        if self.idle_timeout.is_zero() {
            return Err(ServeError::Config(
                "idle_timeout must be positive".to_string(),
            ));
        }
        self.quota.validate().map_err(ServeError::Config)
    }
}

/// What a queued job answers with: final mappings (`Map`) or per-trial
/// collision sets against this server's owned slot range (`MapPartial`,
/// the gather half of the router's scatter-gather).
enum JobKind {
    Map,
    Partial,
}

/// One admitted mapping request: the segments plus the connection to
/// answer. The connection's write half is shared (keep-alive connections
/// can have several responses racing), `seq` is the request's arrival
/// ordinal on its connection (the [`ConnWriter`] answers in that order),
/// and `inflight` is the connection's in-flight count, decremented when
/// this job is answered.
struct Job {
    conn: Arc<ConnWriter>,
    seq: u64,
    inflight: Arc<AtomicUsize>,
    segments: Vec<QuerySegment>,
    kind: JobKind,
    enqueued: Instant,
    /// When the client's deadline budget runs out (None = never expires).
    expires: Option<Instant>,
}

/// A connection's response path, restoring request order. The wire
/// protocol has no correlation id, so a pipelining v3 peer can only match
/// answers to requests positionally — but worker batches complete out of
/// order and rejections (`Busy`, `Throttled`) complete inline, ahead of
/// earlier in-flight answers. Every response is therefore tagged with its
/// request's arrival sequence and held until all earlier sequences are on
/// the wire. The buffer is bounded by the handler's read gate
/// ([`ConnWriter::wait_for_room`]): the handler stops reading new frames
/// while too many answers are outstanding.
struct ConnWriter {
    state: Mutex<WriteState>,
    /// Signaled whenever a response lands on the wire (the read gate
    /// waits on this for room).
    flushed: Condvar,
}

struct WriteState {
    stream: TcpStream,
    /// The next sequence to go on the wire.
    next: u64,
    /// Responses that finished ahead of their turn, encoded, by sequence.
    pending: BTreeMap<u64, (Vec<u8>, ProtocolVersion)>,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        ConnWriter {
            state: Mutex::new(WriteState {
                stream,
                next: 0,
                pending: BTreeMap::new(),
            }),
            flushed: Condvar::new(),
        }
    }

    /// Answer request `seq` with `resp`, writing it now if every earlier
    /// request is answered and buffering it otherwise. A duplicate answer
    /// for a sequence already written or buffered is dropped — the panic
    /// guard can race a normal reply on the chaos paths, and the peer
    /// must see exactly one frame per request. Tolerates a peer that
    /// already hung up (the write error is counted and the sequence still
    /// advances, so later answers never jam behind a dead socket).
    fn send(&self, seq: u64, recorder: &MetricsRecorder, resp: &Response) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if seq < st.next || st.pending.contains_key(&seq) {
            return;
        }
        st.pending.insert(seq, (resp.encode(), resp.wire_version()));
        let mut wrote = false;
        while let Some((body, version)) = {
            let key = st.next;
            st.pending.remove(&key)
        } {
            if write_frame_versioned(&mut st.stream, &body, version).is_err() {
                recorder.add("serve.write_errors", 1);
            }
            st.next += 1;
            wrote = true;
        }
        drop(st);
        if wrote {
            self.flushed.notify_all();
        }
    }

    /// Block until fewer than `limit` requests are outstanding
    /// (`next_seq` assigned, answers not yet on the wire) — the handler's
    /// read gate, bounding the reorder buffer against a peer that floods
    /// cheap requests behind a slow one. Returns `false` on `timeout`
    /// (the connection is wedged; the caller closes it).
    fn wait_for_room(&self, next_seq: u64, limit: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while next_seq.saturating_sub(st.next) >= limit {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .flushed
                .wait_timeout(st, left)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
        true
    }
}

/// One generation of the served index. Bumped atomically by a successful
/// reload; workers pin the epoch per batch, so a swap never tears a batch.
struct Epoch {
    id: u64,
    index: Arc<ShardedIndex>,
}

/// State shared by the accept loop, connection handlers, the worker pool,
/// the supervisor, and reload threads.
struct Shared {
    epoch: RwLock<Epoch>,
    queue: FairQueue<Job>,
    admission: AdmissionControl,
    recorder: Arc<MetricsRecorder>,
    shutdown: AtomicBool,
    /// The bound address — a remote `Shutdown` self-connects to wake the
    /// accept loop out of its blocking accept.
    addr: SocketAddr,
    /// Live connection count, bounded by `max_conns`.
    live_conns: AtomicUsize,
    io_timeout: Duration,
    idle_timeout: Duration,
    max_inflight: usize,
    max_conns: usize,
    /// Global index-pass ordinal (1-based), driving the `panic_every` knob.
    batch_ordinal: AtomicU64,
    batch: usize,
    straggle_ms: u64,
    panic_every: u64,
    /// Global slot-space size reloads repartition into (fixed for the
    /// server's life — every shard of a router topology must agree on it).
    n_slots: usize,
    /// The slot range this server owns. A standalone server owns
    /// everything (`0..n_slots`); a router-tier shard owns its registry
    /// slice and answers `MapPartial` from just that slice.
    owned: Range<usize>,
}

impl Shared {
    /// Pin the current epoch: one `Arc` clone under a read lock.
    fn pin_epoch(&self) -> (u64, Arc<ShardedIndex>) {
        let e = self.epoch.read().expect("epoch lock poisoned");
        (e.id, Arc::clone(&e.index))
    }

    /// The served index's parameters as of the current epoch.
    fn current_info(&self) -> ServerInfo {
        let (_, index) = self.pin_epoch();
        ServerInfo {
            config: *index.mapper().config(),
            scheme: index.mapper().scheme(),
            subject_names: index.mapper().subject_names().to_vec(),
            shards: index.n_shards(),
            batch: self.batch,
        }
    }
}

/// Handle to a running server: its address, its metrics, and the two ways
/// a run ends ([`ServerHandle::shutdown`] locally, [`ServerHandle::join`]
/// after a remote shutdown request).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics recorder (live; snapshot any time).
    pub fn recorder(&self) -> &MetricsRecorder {
        &self.shared.recorder
    }

    /// Trigger a graceful shutdown and wait for it to finish: stop
    /// accepting, drain every queued request, join all threads. Returns
    /// the final metrics snapshot.
    pub fn shutdown(mut self) -> Snapshot {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        self.join_inner()
    }

    /// Wait for the server to end on its own (a remote
    /// [`Request::Shutdown`](crate::Request)), then return the
    /// final metrics snapshot.
    pub fn join(mut self) -> Snapshot {
        self.join_inner()
    }

    fn join_inner(&mut self) -> Snapshot {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        self.shared.recorder.snapshot()
    }
}

/// Bind `addr` and start serving `index`. Returns once the listener is
/// live; mapping happens on background threads until shutdown.
pub fn start(
    index: ShardedIndex,
    addr: &str,
    config: &ServerConfig,
) -> Result<ServerHandle, ServeError> {
    config.validate()?;
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let recorder = Arc::new(MetricsRecorder::new());

    // Startup gauges: shard balance of the resident table, pool size.
    for count in index.shard_entry_counts() {
        recorder.observe("serve.shard_entries", count as u64);
    }
    recorder.add("serve.started", 1);
    recorder.add("serve.workers_configured", config.workers as u64);

    let n_slots = index.n_shards();
    let owned = index.owned_slots();
    let shared = Arc::new(Shared {
        epoch: RwLock::new(Epoch {
            id: 0,
            index: Arc::new(index),
        }),
        // Quantum = batch: one sweep visit lets a lane contribute about
        // one index pass worth of segments before the next lane's turn.
        queue: FairQueue::new(config.queue_cap, MAX_LANES, config.batch as u64),
        admission: AdmissionControl::new(config.quota),
        recorder,
        shutdown: AtomicBool::new(false),
        addr,
        live_conns: AtomicUsize::new(0),
        io_timeout: config.io_timeout,
        idle_timeout: config.idle_timeout,
        max_inflight: config.max_inflight,
        max_conns: config.max_conns,
        batch_ordinal: AtomicU64::new(0),
        batch: config.batch,
        straggle_ms: config.straggle_ms,
        panic_every: config.panic_every,
        n_slots,
        owned,
    });

    let supervisor = {
        let shared = Arc::clone(&shared);
        let workers = config.workers;
        std::thread::spawn(move || supervise(&shared, workers))
    };

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            accept_loop(&listener, &shared);
            // Whatever ended the loop (local flag or remote request):
            // refuse new work, let workers drain and exit.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
        })
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        supervisor: Some(supervisor),
    })
}

/// Saturating in-flight decrement: the chaos paths (panic guard racing a
/// normal reply) may release the same slot twice, and a wrapped counter
/// would wedge the connection's admission forever.
fn release_inflight(inflight: &AtomicUsize) {
    let _ = inflight.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
        Some(v.saturating_sub(1))
    });
}

/// Is this i/o error a read timeout? (Unix reports `WouldBlock`, Windows
/// `TimedOut`, for a socket read that hit `SO_RCVTIMEO`.) Shared with the
/// router's ingress, which reaps idle connections the same way.
pub(crate) fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let recorder = &shared.recorder;
    loop {
        let mut conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        recorder.add("serve.connections", 1);
        // Connection cap: past it, answer Busy and close instead of
        // spawning another handler — bounded threads, bounded FDs.
        let prev = shared.live_conns.fetch_add(1, Ordering::AcqRel);
        if prev >= shared.max_conns {
            shared.live_conns.fetch_sub(1, Ordering::AcqRel);
            recorder.add("serve.conn_rejected", 1);
            let busy = Response::Busy;
            let _ = conn.set_write_timeout(Some(shared.io_timeout));
            let _ = write_frame_versioned(&mut conn, &busy.encode(), busy.wire_version());
            continue;
        }
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(&shared, conn)));
            shared.live_conns.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

/// Serve one connection: reap it if it idles, read frames while they
/// arrive, dispatch each request. Connections speaking `JEMSRV3` are kept
/// alive across requests; older revisions keep their one-request
/// lifecycle (the job's shared handle keeps the socket open until the
/// worker has answered).
fn handle_connection(shared: &Arc<Shared>, mut reader: TcpStream) {
    let recorder = &shared.recorder;
    if reader.set_write_timeout(Some(shared.io_timeout)).is_err() {
        return;
    }
    // Reads happen on `reader` without any lock; responses go through the
    // shared write half (same underlying socket) so workers, reload
    // threads, and this handler never interleave frames — and the writer
    // restores request order across them.
    let writer = match reader.try_clone() {
        Ok(w) => Arc::new(ConnWriter::new(w)),
        Err(_) => return,
    };
    let inflight = Arc::new(AtomicUsize::new(0));
    // Arrival ordinal of the next request on this connection; every
    // request consumes one and is answered at it.
    let mut seq: u64 = 0;
    // Read gate: cap the writer's reorder buffer. Admitted jobs are
    // already capped by `max_inflight`; the slack covers inline answers
    // (pings, rejections) buffered behind a slow in-flight batch.
    let room = shared.max_inflight as u64 + 16;
    loop {
        if !writer.wait_for_room(seq, room, shared.io_timeout) {
            recorder.add("serve.write_stalled", 1);
            return;
        }
        // Idle phase: wait (bounded) for the next frame's first byte. A
        // clean EOF ends the connection; a peer holding the socket open
        // without sending is reaped — unless it is merely waiting for
        // answers we still owe it.
        if reader.set_read_timeout(Some(shared.idle_timeout)).is_err() {
            return;
        }
        let mut first = [0u8; 1];
        match reader.peek(&mut first) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if inflight.load(Ordering::Acquire) > 0 {
                    continue; // quiet but waiting on us, not idle
                }
                recorder.add("serve.reaped_idle", 1);
                return;
            }
            Err(_) => return,
        }
        // Frame phase: bytes are flowing, so hold the peer to the io
        // timeout; a stall mid-frame is reaped like idleness.
        if reader.set_read_timeout(Some(shared.io_timeout)).is_err() {
            return;
        }
        let received = Instant::now();
        let decoded = read_frame_versioned(&mut reader)
            .and_then(|(version, body)| Ok((version, Request::decode_versioned(&body, version)?)));
        let (version, request) = match decoded {
            Ok(pair) => pair,
            Err(ServeError::Io(e)) if is_timeout(&e) => {
                recorder.add("serve.reaped_idle", 1);
                return;
            }
            Err(e) => {
                recorder.add("serve.protocol_errors", 1);
                writer.send(seq, recorder, &Response::Error(e.to_string()));
                return;
            }
        };
        // This request's answer slot: responses on this connection go out
        // in arrival order, whichever thread produces them first.
        let at = seq;
        seq += 1;
        let keep_alive = version == ProtocolVersion::V3;
        let (client_id, request) = request.untag();
        match request {
            Request::Ping => writer.send(at, recorder, &Response::Pong),
            Request::Info => writer.send(at, recorder, &Response::Info(shared.current_info())),
            Request::Shutdown => {
                recorder.add("serve.shutdown_requests", 1);
                writer.send(at, recorder, &Response::ShuttingDown);
                shared.shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(shared.addr);
                return;
            }
            Request::Reload { path } => {
                recorder.add("serve.reload_requests", 1);
                // Load off the handler path: a multi-second index load
                // must not stall admission of this connection's requests.
                spawn_reload(Arc::clone(shared), Arc::clone(&writer), at, path);
            }
            Request::Map {
                segments,
                deadline_ms,
            } => admit(
                shared,
                &writer,
                at,
                &inflight,
                client_id.as_deref(),
                version,
                segments,
                JobKind::Map,
                deadline_ms,
                received,
            ),
            Request::MapPartial {
                segments,
                deadline_ms,
            } => {
                recorder.add("serve.partial_requests", 1);
                admit(
                    shared,
                    &writer,
                    at,
                    &inflight,
                    client_id.as_deref(),
                    version,
                    segments,
                    JobKind::Partial,
                    deadline_ms,
                    received,
                );
            }
            Request::MapDegraded { .. } => writer.send(
                at,
                recorder,
                &Response::Error(
                    "degraded answers come from the router tier; this is a shard server".into(),
                ),
            ),
            // decode_versioned rejects nested envelopes; refuse one
            // defensively anyway rather than recurse.
            Request::Tagged { .. } => {
                recorder.add("serve.protocol_errors", 1);
                writer.send(
                    at,
                    recorder,
                    &Response::Error("nested tagged envelope".into()),
                );
                return;
            }
        }
        if !keep_alive {
            return;
        }
    }
}

/// Admit one mapping job through the three overload gates — the
/// per-connection in-flight cap, the per-client quota, the per-client
/// queue lane — answering a typed rejection at whichever gate refuses.
/// The in-flight cap runs first (it charges nothing), and a request the
/// queue refuses after the quota charged it is refunded: a rejected
/// request never costs tokens, whatever gate rejected it.
#[allow(clippy::too_many_arguments)]
fn admit(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    seq: u64,
    inflight: &Arc<AtomicUsize>,
    client_id: Option<&str>,
    version: ProtocolVersion,
    segments: Vec<QuerySegment>,
    kind: JobKind,
    deadline_ms: Option<u64>,
    received: Instant,
) {
    let recorder = &shared.recorder;
    let lane = client_id.unwrap_or("");
    let cost = (segments.len() as u64).max(1);
    let prev = inflight.fetch_add(1, Ordering::AcqRel);
    if prev >= shared.max_inflight {
        release_inflight(inflight);
        recorder.add("serve.inflight_rejected", 1);
        writer.send(seq, recorder, &Response::Busy);
        return;
    }
    if let Err(retry_after) = shared.admission.try_admit(lane, cost) {
        release_inflight(inflight);
        recorder.add("serve.throttled", 1);
        // Version negotiation: never answer a newer revision than the
        // request spoke. Pre-v3 peers cannot decode Throttled, so an
        // over-quota v1/v2 (or anonymous) request degrades to Busy.
        let resp = if version == ProtocolVersion::V3 {
            Response::Throttled {
                retry_after_ms: u64::try_from(retry_after.as_millis()).unwrap_or(u64::MAX),
            }
        } else {
            Response::Busy
        };
        writer.send(seq, recorder, &resp);
        return;
    }
    if deadline_ms.is_some() {
        recorder.add("serve.deadline_requests", 1);
    }
    let job = Job {
        conn: Arc::clone(writer),
        seq,
        inflight: Arc::clone(inflight),
        segments,
        kind,
        enqueued: received,
        expires: deadline_ms.map(|ms| received + Duration::from_millis(ms)),
    };
    match shared.queue.try_push(lane, cost, job) {
        Ok(depth) => {
            recorder.add("serve.enqueued", 1);
            recorder.observe("serve.queue_depth", depth.total as u64);
            recorder.observe("serve.lane_depth", depth.lane as u64);
        }
        Err((job, PushError::Full)) => {
            shared.admission.refund(lane, cost);
            release_inflight(&job.inflight);
            recorder.add("serve.busy", 1);
            job.conn.send(job.seq, recorder, &Response::Busy);
        }
        Err((job, PushError::Closed)) => {
            shared.admission.refund(lane, cost);
            release_inflight(&job.inflight);
            job.conn.send(job.seq, recorder, &Response::ShuttingDown);
        }
    }
}

/// Load, shard, and validate a persisted index for startup or a hot
/// reload. `load_index_path` memory-maps JEMIDX v4 artifacts (zero
/// posting-arena copy; hot reload is a remap) and falls back to an owned
/// read for v3 or non-mmap platforms. Header/checksum validation happens
/// before the mapper is built, so a truncated or corrupt artifact is a
/// typed error here — never a panic, never a swap.
fn load_sharded(path: &str, n_slots: usize, owned: Range<usize>) -> Result<ShardedIndex, String> {
    let mapper =
        jem_core::load_index_path(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    Ok(ShardedIndex::with_slots(mapper, n_slots, owned))
}

/// Run one reload on its own thread: load + validate the new index, then
/// atomically bump the epoch. In-flight batches keep their pinned old
/// epoch; a failed load answers `Error` and leaves the old index serving.
fn spawn_reload(shared: Arc<Shared>, conn: Arc<ConnWriter>, seq: u64, path: String) {
    std::thread::spawn(move || {
        let resp = match load_sharded(&path, shared.n_slots, shared.owned.clone()) {
            Ok(index) => {
                let subjects = index.mapper().n_subjects();
                let entries: usize = index.shard_entry_counts().iter().sum();
                let new_id = {
                    let mut e = shared.epoch.write().expect("epoch lock poisoned");
                    e.id += 1;
                    e.index = Arc::new(index);
                    e.id
                };
                shared.recorder.add("serve.reloads", 1);
                Response::Reloaded(format!(
                    "epoch {new_id}: {subjects} subjects, {entries} sketch entries from {path}"
                ))
            }
            Err(msg) => {
                shared.recorder.add("serve.reload_errors", 1);
                Response::Error(format!("reload {path}: {msg}"))
            }
        };
        conn.send(seq, &shared.recorder, &resp);
    });
}

/// How a worker thread ended: cleanly (queue closed and drained) or by
/// panicking out of its request loop.
struct WorkerExit {
    id: usize,
    panicked: bool,
}

fn spawn_worker(
    id: usize,
    shared: &Arc<Shared>,
    exits: mpsc::Sender<WorkerExit>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let panicked = catch_unwind(AssertUnwindSafe(|| worker_loop(&shared))).is_err();
        let _ = exits.send(WorkerExit { id, panicked });
    })
}

/// The supervisor: spawn the pool, then babysit it. A worker that exits
/// cleanly is done (shutdown drain); a worker that panicked already failed
/// its in-flight batch via [`BatchGuard`], so the supervisor only has to
/// count the panic and respawn a replacement — pool capacity never decays,
/// and a panic during the shutdown drain still leaves enough workers to
/// answer everything admitted.
fn supervise(shared: &Arc<Shared>, workers: usize) {
    let (tx, rx) = mpsc::channel::<WorkerExit>();
    let mut handles: Vec<Option<JoinHandle<()>>> = (0..workers)
        .map(|id| Some(spawn_worker(id, shared, tx.clone())))
        .collect();
    let mut alive = workers;
    while alive > 0 {
        // The supervisor keeps a sender, so recv can only fail if
        // something impossible happened; treat it as a full stop.
        let Ok(exit) = rx.recv() else { break };
        if let Some(handle) = handles[exit.id].take() {
            let _ = handle.join();
        }
        if exit.panicked {
            shared.recorder.add("serve.worker_panic", 1);
            shared.recorder.add("serve.worker_respawns", 1);
            handles[exit.id] = Some(spawn_worker(exit.id, shared, tx.clone()));
        } else {
            shared.recorder.add("serve.worker_clean_exits", 1);
            alive -= 1;
        }
    }
}

/// Panic insurance for one index pass: holds the connection handles (and
/// in-flight counters) for every job in the batch. If the pass unwinds,
/// the guard's drop (running during the unwind) answers each client with
/// a typed `Error` frame and releases its in-flight slot — a worker panic
/// costs the batch an error reply, never a hung client.
struct BatchGuard<'a> {
    clients: Vec<(Arc<ConnWriter>, u64, Arc<AtomicUsize>)>,
    recorder: &'a MetricsRecorder,
    armed: bool,
}

impl<'a> BatchGuard<'a> {
    fn arm(jobs: &[Job], recorder: &'a MetricsRecorder) -> Self {
        BatchGuard {
            clients: jobs
                .iter()
                .map(|j| (Arc::clone(&j.conn), j.seq, Arc::clone(&j.inflight)))
                .collect(),
            recorder,
            armed: true,
        }
    }

    /// The pass completed; replies were written normally.
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        if !self.armed || !std::thread::panicking() {
            return;
        }
        let resp = Response::Error("internal error: worker panicked on this batch".into());
        for (conn, seq, inflight) in &self.clients {
            conn.send(*seq, self.recorder, &resp);
            release_inflight(inflight);
        }
        self.recorder
            .add("serve.panic_failed_requests", self.clients.len() as u64);
    }
}

fn worker_loop(shared: &Shared) {
    let recorder = &*shared.recorder;
    // One counter per epoch for the whole worker lifetime: the lazy
    // strategy makes cross-batch reuse free as long as query ids keep
    // increasing. A reload means a new subject universe, so the counter
    // (sized by subject count) is rebuilt when the pinned epoch changes.
    let mut epoch_id = u64::MAX;
    let mut counter = None;
    let mut qid_base = 0u64;
    // One sketching/lookup scratch for the worker lifetime — unlike the
    // counter it is index-agnostic (buffers are sized by sequence content),
    // so it survives epoch changes.
    let mut scratch = MapScratch::new();
    loop {
        let jobs = shared.queue.pop_batch(shared.batch);
        if jobs.is_empty() {
            return; // queue closed and drained
        }
        let (eid, index) = shared.pin_epoch();
        if eid != epoch_id || counter.is_none() {
            counter = Some(index.new_counter());
            epoch_id = eid;
            qid_base = 0;
        }
        let counter = counter.as_mut().expect("counter initialized above");
        if shared.straggle_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.straggle_ms));
        }
        // Deadline shedding: a request whose budget ran out while queued
        // gets `Expired` immediately — no index pass is spent on an answer
        // nobody is waiting for anymore.
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.expires.is_some_and(|t| t <= now) {
                recorder.add("serve.shed", 1);
                job.conn.send(job.seq, recorder, &Response::Expired);
                release_inflight(&job.inflight);
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }
        let ordinal = shared.batch_ordinal.fetch_add(1, Ordering::Relaxed) + 1;
        let _pass = Span::enter(recorder as &dyn Recorder, "serve/batch");
        let n_segments: usize = live.iter().map(|j| j.segments.len()).sum();
        recorder.observe("serve.batch_jobs", live.len() as u64);
        recorder.observe("serve.batch_segments", n_segments as u64);
        let guard = BatchGuard::arm(&live, recorder);
        if shared.panic_every > 0 && ordinal % shared.panic_every == 0 {
            panic!("injected chaos panic (index pass {ordinal})");
        }
        for job in live {
            let resp = match job.kind {
                JobKind::Map => {
                    let mut mappings =
                        index.map_batch_with(&job.segments, qid_base, counter, &mut scratch);
                    qid_base += job.segments.len() as u64;
                    // The documented total order on `Mapping` — same
                    // normalization as the offline parallel driver.
                    mappings.sort_unstable();
                    recorder.add("serve.mapped", mappings.len() as u64);
                    Response::Mappings(mappings)
                }
                // Partials echo each segment's identity and need no hit
                // counter (the router's merge is the counter), so they
                // consume no query ids.
                JobKind::Partial => Response::Partials(
                    job.segments
                        .iter()
                        .map(|seg| SegmentPartials {
                            read_idx: seg.read_idx,
                            end: seg.end,
                            trials: index.segment_partials_with(&seg.seq, &mut scratch),
                        })
                        .collect(),
                ),
            };
            recorder.add("serve.requests", 1);
            recorder.add("serve.segments", job.segments.len() as u64);
            job.conn.send(job.seq, recorder, &resp);
            release_inflight(&job.inflight);
            let latency = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
            recorder.span_ns("serve/request", latency);
        }
        guard.disarm();
        let stats = counter.stats.take();
        recorder.add("serve.collisions_probed", stats.probed);
        recorder.add("serve.lazy_resets", stats.lazy_resets);
        recorder.add("serve.resets_skipped", stats.resets_skipped);
        recorder.add("serve.ties", stats.ties);
    }
}
