//! The shard registry: which shard process owns which slot range.
//!
//! A router topology partitions the global slot space (the same space
//! [`crate::ShardedIndex::with_slots`] hashes codes into) across
//! independent `jem serve` processes. The registry is the router's map of
//! that partition: one [`ShardSpec`] per shard — its slot range, primary
//! address, and optional hedge replica — plus an epoch counter naming the
//! topology generation (operators bump it when they roll a new layout, so
//! snapshots from different generations are distinguishable).
//!
//! Validation is strict: the slot ranges must cover `0..n_slots` exactly,
//! with no gap and no overlap. A gap would silently drop collisions (a
//! *wrong* answer, not a degraded one); an overlap would double-count
//! nothing (sets union idempotently) but waste a full shard of work —
//! both are configuration bugs the router refuses to start with.

use crate::ServeError;
use std::fmt;
use std::ops::Range;

/// One shard process of a router topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// The global slot range this shard owns (`lo..hi`, half-open).
    pub slots: Range<usize>,
    /// Primary address (`host:port`) of the `jem serve` process.
    pub addr: String,
    /// Optional replica address hedged requests fail over to; `None`
    /// re-dispatches the hedge to the primary.
    pub replica: Option<String>,
}

/// A validated set of [`ShardSpec`]s covering the slot space exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRegistry {
    n_slots: usize,
    shards: Vec<ShardSpec>,
    epoch: u64,
}

impl ShardRegistry {
    /// Build a registry over `shards`, validating that their slot ranges
    /// partition `0..n_slots` exactly (disjoint, gap-free, in-range).
    /// The shards are sorted by slot range; shard ids (the ids a
    /// `Degraded` answer names) are indices into that sorted order.
    pub fn new(n_slots: usize, mut shards: Vec<ShardSpec>) -> Result<Self, ServeError> {
        if n_slots == 0 {
            return Err(ServeError::Config("slot space must be non-empty".into()));
        }
        if shards.is_empty() {
            return Err(ServeError::Config(
                "registry needs at least one shard".into(),
            ));
        }
        shards.sort_by_key(|s| s.slots.start);
        let mut expect = 0usize;
        for (i, spec) in shards.iter().enumerate() {
            if spec.slots.start >= spec.slots.end {
                return Err(ServeError::Config(format!(
                    "shard {i}: slot range {}-{} is empty",
                    spec.slots.start, spec.slots.end
                )));
            }
            if spec.slots.start != expect {
                return Err(ServeError::Config(format!(
                    "shard {i}: slot range starts at {} but {} is the next uncovered slot \
                     (ranges must partition 0..{n_slots} exactly)",
                    spec.slots.start, expect
                )));
            }
            if spec.addr.is_empty() {
                return Err(ServeError::Config(format!("shard {i}: empty address")));
            }
            expect = spec.slots.end;
        }
        if expect != n_slots {
            return Err(ServeError::Config(format!(
                "shard ranges cover 0..{expect} but the slot space is 0..{n_slots}"
            )));
        }
        Ok(ShardRegistry {
            n_slots,
            shards,
            epoch: 0,
        })
    }

    /// Same registry with a different topology epoch.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Parse a topology spec: `;`-separated entries of
    /// `LO-HI@ADDR[,REPLICA]`, e.g.
    /// `0-2@127.0.0.1:7878;2-4@127.0.0.1:7879,127.0.0.1:7880`.
    /// The slot-space size is the largest `HI`; the exact-cover check
    /// then catches any gap or overlap.
    pub fn parse(spec: &str) -> Result<Self, ServeError> {
        let mut shards = Vec::new();
        let mut n_slots = 0usize;
        for (i, entry) in spec.split(';').enumerate() {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let bad = |what: &str| {
                ServeError::Config(format!(
                    "topology entry {i} ({entry:?}): {what} \
                     (expected LO-HI@ADDR[,REPLICA])"
                ))
            };
            let (range, addrs) = entry.split_once('@').ok_or_else(|| bad("missing '@'"))?;
            let (lo, hi) = range.split_once('-').ok_or_else(|| bad("missing '-'"))?;
            let lo: usize = lo.trim().parse().map_err(|_| bad("bad low slot"))?;
            let hi: usize = hi.trim().parse().map_err(|_| bad("bad high slot"))?;
            let (addr, replica) = match addrs.split_once(',') {
                Some((a, r)) => (a.trim().to_string(), Some(r.trim().to_string())),
                None => (addrs.trim().to_string(), None),
            };
            if addr.is_empty() {
                return Err(bad("empty address"));
            }
            if replica.as_deref() == Some("") {
                return Err(bad("empty replica address"));
            }
            n_slots = n_slots.max(hi);
            shards.push(ShardSpec {
                slots: lo..hi,
                addr,
                replica,
            });
        }
        ShardRegistry::new(n_slots, shards)
    }

    /// Size of the global slot space.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// The topology generation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shards, sorted by slot range; the index in this slice is the
    /// shard id the router's `Degraded` answers name.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the registry is empty (never true for a validated one).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

impl fmt::Display for ShardRegistry {
    /// Renders back to the [`ShardRegistry::parse`] grammar (round-trips).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{}-{}@{}", s.slots.start, s.slots.end, s.addr)?;
            if let Some(r) = &s.replica {
                write!(f, ",{r}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(lo: usize, hi: usize, addr: &str) -> ShardSpec {
        ShardSpec {
            slots: lo..hi,
            addr: addr.to_string(),
            replica: None,
        }
    }

    #[test]
    fn exact_cover_accepted_and_sorted() {
        let reg =
            ShardRegistry::new(5, vec![spec(2, 4, "b"), spec(0, 2, "a"), spec(4, 5, "c")]).unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.n_slots(), 5);
        let ranges: Vec<_> = reg.shards().iter().map(|s| s.slots.clone()).collect();
        assert_eq!(ranges, vec![0..2, 2..4, 4..5]);
    }

    #[test]
    fn gaps_overlaps_and_short_covers_rejected() {
        // Gap: slot 2 uncovered.
        assert!(ShardRegistry::new(4, vec![spec(0, 2, "a"), spec(3, 4, "b")]).is_err());
        // Overlap: slot 1 covered twice.
        assert!(ShardRegistry::new(3, vec![spec(0, 2, "a"), spec(1, 3, "b")]).is_err());
        // Short: slot 3 uncovered at the end.
        assert!(ShardRegistry::new(4, vec![spec(0, 3, "a")]).is_err());
        // Empty range.
        assert!(ShardRegistry::new(2, vec![spec(0, 0, "a"), spec(0, 2, "b")]).is_err());
        // Empty registry / empty space.
        assert!(ShardRegistry::new(2, Vec::new()).is_err());
        assert!(ShardRegistry::new(0, vec![spec(0, 0, "a")]).is_err());
    }

    #[test]
    fn parse_roundtrips_through_display() {
        let text = "0-2@127.0.0.1:7878;2-4@127.0.0.1:7879,127.0.0.1:7880";
        let reg = ShardRegistry::parse(text).unwrap();
        assert_eq!(reg.n_slots(), 4);
        assert_eq!(reg.shards()[0].replica, None);
        assert_eq!(reg.shards()[1].replica.as_deref(), Some("127.0.0.1:7880"));
        assert_eq!(reg.to_string(), text);
        assert_eq!(ShardRegistry::parse(&reg.to_string()).unwrap(), reg);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "",                  // no entries at all
            "0-2127.0.0.1:7878", // missing '@'
            "02@addr",           // missing '-'
            "x-2@addr",          // bad number
            "0-2@",              // empty address
            "0-2@addr,",         // empty replica
            "0-2@a;3-4@b",       // gap at slot 2
            "0-2@a;1-3@b",       // overlap at slot 1
        ] {
            assert!(ShardRegistry::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
