//! # jem-serve — resident sharded mapping service
//!
//! The offline pipeline (`jem index` → `jem map`) rebuilds or reloads the
//! sketch index for every invocation; for interactive triage and
//! map-on-demand workloads that load dominates. This crate keeps a
//! persisted index resident: [`ShardedIndex`] loads it once into a
//! shard-partitioned read-only sketch table shared across a fixed worker
//! pool, and [`server::start`] serves mapping requests over TCP with a
//! length-prefixed, checksummed binary frame protocol
//! ([`protocol`], magic `JEMSRV1\0` — the serving twin of the `JEMIDX3`
//! persist frame).
//!
//! Load-shedding is explicit: requests pass through a bounded queue
//! ([`queue::BoundedQueue`]); when it is full the server answers
//! [`Response::Busy`] instead of buffering unboundedly. Workers batch up
//! to `batch` queued requests per index pass and reuse one lazy hit
//! counter across batches (the paper's O(1)-reset strategy is what makes
//! that reuse free). Shutdown — local via [`server::ServerHandle::shutdown`]
//! or remote via [`Request::Shutdown`] — drains every admitted request and
//! returns a final `jem-obs` metrics snapshot.
//!
//! [`Client`] is the blocking client library the `jem query` CLI and the
//! equivalence suite are built on. Server-side mappings are sorted into
//! the total order documented on [`jem_core::Mapping`], so a served batch
//! renders byte-identically to the offline `jem map` TSV.
//!
//! For deployments too big (or too failure-prone) for one process, the
//! router tier ([`router`]) scatter-gathers each query across independent
//! shard servers, each owning a slice of the slot space
//! ([`ShardedIndex::with_slots`], [`registry::ShardRegistry`]): per-trial
//! collision sets from disjoint slices union back into exactly the
//! single-process answer ([`router::merge_partials`]). The router gates
//! unhealthy shards behind per-shard circuit breakers, hedges stragglers
//! to replicas, propagates deadline budgets, and — when shards are missing
//! — answers [`Response::Degraded`] naming exactly which ids its answer
//! lacks, so a partial answer is never mistaken for a full one.

pub mod admission;
pub mod chaos;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod router;
pub mod server;
pub mod shard;

pub use admission::{AdmissionControl, QuotaConfig};
pub use chaos::{ChaosAction, ChaosPlan, ChaosProxy};
pub use client::{Client, RetryPolicy};
pub use protocol::{
    read_frame, read_frame_versioned, write_frame, write_frame_versioned, ProtocolVersion, Request,
    Response, SegmentPartials, ServerInfo, MAGIC, MAGIC_V2, MAGIC_V3, MAX_BODY, MAX_CLIENT_ID,
};
pub use queue::{BoundedQueue, FairQueue, PushError};
pub use registry::{ShardRegistry, ShardSpec};
pub use router::{
    merge_partials, start_router, validate_partials, RouterConfig, RouterHandle, RouterReport,
    ShardConnPool,
};
pub use server::{start, ServerConfig, ServerHandle};
pub use shard::ShardedIndex;

use std::fmt;

/// Errors of the serving layer, split by what the caller can do about
/// them: retry later ([`ServeError::Busy`]), fix the frame or connection
/// ([`ServeError::Protocol`], [`ServeError::Io`]), fix the configuration
/// ([`ServeError::Config`]), or read the server's reason
/// ([`ServeError::Remote`]).
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// Malformed frame or message body (bad magic, checksum mismatch,
    /// truncation, unknown tag).
    Protocol(String),
    /// The server's bounded queue was full — retry after a backoff.
    Busy,
    /// The request's deadline elapsed while it was queued; the server shed
    /// it without mapping. Retrying is pointless unless the caller extends
    /// (or drops) the deadline.
    Expired,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
    /// This client's admission quota is exhausted. Unlike
    /// [`ServeError::Busy`] (the *server* is saturated), the server has
    /// capacity but the caller is over its per-client rate; the hint says
    /// when its token bucket can afford the retry.
    Throttled {
        /// Server-computed wait until the rejected request would be
        /// admitted.
        retry_after: std::time::Duration,
    },
    /// The server answered with an error message.
    Remote(String),
    /// Invalid local configuration (zero workers/queue/batch/shards).
    Config(String),
}

impl ServeError {
    /// A [`ServeError::Protocol`] from any message-like value.
    pub(crate) fn protocol(msg: impl Into<String>) -> Self {
        ServeError::Protocol(msg.into())
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Busy => write!(f, "server busy: request queue full, retry later"),
            ServeError::Expired => write!(
                f,
                "request deadline expired while queued; the server shed it"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Throttled { retry_after } => write!(
                f,
                "client quota exhausted: retry after {}ms",
                retry_after.as_millis()
            ),
            ServeError::Remote(msg) => write!(f, "server error: {msg}"),
            ServeError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_names_the_failure() {
        assert!(ServeError::Busy.to_string().contains("retry"));
        assert!(ServeError::Expired.to_string().contains("deadline"));
        let throttled = ServeError::Throttled {
            retry_after: std::time::Duration::from_millis(250),
        };
        assert!(throttled.to_string().contains("250ms"));
        assert!(throttled.to_string().contains("quota"));
        assert!(ServeError::protocol("bad magic")
            .to_string()
            .contains("bad magic"));
        assert!(ServeError::Remote("boom".into())
            .to_string()
            .contains("boom"));
        let io: ServeError = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow").into();
        assert!(io.to_string().contains("slow"));
    }

    #[test]
    fn only_io_has_a_source() {
        use std::error::Error;
        let io: ServeError = std::io::Error::other("x").into();
        assert!(io.source().is_some());
        assert!(ServeError::Busy.source().is_none());
    }
}
