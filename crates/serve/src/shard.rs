//! Shard partitioning of the sketch table for the resident service.
//!
//! The service loads one index and answers queries from many worker
//! threads, so the lookup structure must be shared read-only.
//! [`ShardedIndex`] partitions the *slot space* — every `(trial, code)`
//! entry hashes to exactly one of `n_slots` global slots, and an index
//! owns a sub-range of them — the same table-splitting idea minimap2's
//! multi-part `.mmi` index uses, applied to the resident artifact.
//!
//! Ownership is enforced at lookup time: a code whose slot falls outside
//! the owned range resolves to the empty set, and owned codes go straight
//! to the mapper's table backend. No per-slot sub-tables are materialized,
//! so a shard process over a memory-mapped JEMIDX v4 index keeps *zero*
//! private table memory — every shard on a host shares one read-only
//! mapping of the artifact, and hot reload is a remap. Because each entry
//! belongs to exactly one slot and per-trial collision sets are
//! deduplicated downstream, slot count and ownership can never change
//! mapping output (pinned by the equivalence suite).

use jem_core::{JemMapper, MapScratch, Mapping, QuerySegment};
use jem_index::{HitCounter, LazyHitCounter, SubjectId};
use std::ops::Range;

/// Fibonacci multiplier (`floor(2^64/φ)`) — mixes sketch codes into shard
/// ids independently of the in-shard bucket hash (which uses the high bits
/// of the same multiply; taking bits 32..48 here keeps the two choices
/// decorrelated enough for balanced shards).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A read-only [`JemMapper`] whose sketch table is partitioned into
/// disjoint slots by sketch-code hash, with ownership applied as a
/// lookup-time filter.
///
/// A full index owns every slot of the partition (`new`); a router-tier
/// shard process owns only a sub-range of the global slot space
/// (`with_slots`) — codes hashing outside the owned range simply look up
/// empty, which is exactly the per-trial partial set the router's merge
/// unions back together.
#[derive(Clone, Debug)]
pub struct ShardedIndex {
    mapper: JemMapper,
    /// Size of the global slot space codes are hashed into.
    n_slots: usize,
    /// The slot sub-range this index owns (the full range for `new`).
    owned: Range<usize>,
}

impl ShardedIndex {
    /// Partition `mapper`'s table into `n_shards` disjoint sub-tables,
    /// owning all of them (the single-process service).
    ///
    /// # Panics
    /// Panics if `n_shards` is zero (the CLI rejects `--shards 0` first).
    pub fn new(mapper: JemMapper, n_shards: usize) -> Self {
        ShardedIndex::with_slots(mapper, n_shards, 0..n_shards)
    }

    /// Restrict `mapper` to the `owned` sub-range of a global space of
    /// `n_slots` slots — one shard process of a router topology. No table
    /// data is copied or rebuilt: ownership is a per-lookup filter over
    /// the mapper's (possibly memory-mapped) backend, so a shard holds no
    /// private table memory at all.
    ///
    /// # Panics
    /// Panics if `owned` is empty or reaches past `n_slots`.
    pub fn with_slots(mapper: JemMapper, n_slots: usize, owned: Range<usize>) -> Self {
        assert!(n_slots >= 1, "shard count must be at least 1");
        assert!(
            owned.start < owned.end,
            "owned slot range must be non-empty"
        );
        assert!(
            owned.end <= n_slots,
            "owned slot range {owned:?} reaches past the {n_slots}-slot space"
        );
        ShardedIndex {
            mapper,
            n_slots,
            owned,
        }
    }

    /// The wrapped mapper (config, scheme, subject names).
    pub fn mapper(&self) -> &JemMapper {
        &self.mapper
    }

    /// Number of slots in the global partition (equals the local table
    /// count for a fully-owned index).
    pub fn n_shards(&self) -> usize {
        self.n_slots
    }

    /// The slot sub-range this index owns.
    pub fn owned_slots(&self) -> Range<usize> {
        self.owned.clone()
    }

    /// `(trial, code, subject)` association count per owned slot — the
    /// shard balance signal (`serve.shard_entries` histogram at startup).
    /// Computed by one walk over the backend's keys; entries outside the
    /// owned range are not counted, matching what lookups can reach.
    pub fn shard_entry_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.owned.len()];
        let table = self.mapper.table();
        for t in 0..table.trials() {
            table.for_each_key(t, |code, n| {
                let g = shard_of(code, self.n_slots);
                if self.owned.contains(&g) {
                    counts[g - self.owned.start] += n;
                }
            });
        }
        counts
    }

    /// Append the subjects registered under `(trial, code)` — resolved
    /// through the owning slot — to `out`; appends nothing when the slot
    /// belongs to another shard process.
    #[inline]
    fn lookup_into(&self, trial: usize, code: u64, out: &mut Vec<SubjectId>) {
        if self.owned.contains(&shard_of(code, self.n_slots)) {
            self.mapper.table().lookup_into(trial, code, out);
        }
    }

    /// A counter sized for this index (one per worker, reused across
    /// batches — the lazy strategy makes reuse free).
    pub fn new_counter(&self) -> LazyHitCounter {
        self.mapper.new_counter()
    }

    /// Map one end segment through the sharded table.
    ///
    /// Mirrors `JemMapper::map_segment` exactly — sketch, per-trial
    /// collision set (deduplicated), lazy-counter argmax — with only the
    /// table lookup routed through the owning shard, so the result is
    /// identical to the offline driver's for any shard count.
    pub fn map_segment(
        &self,
        seg: &[u8],
        qid: u64,
        counter: &mut LazyHitCounter,
    ) -> Option<(SubjectId, u32)> {
        let mut scratch = MapScratch::new();
        self.map_segment_with(seg, qid, counter, &mut scratch)
    }

    /// [`ShardedIndex::map_segment`] with caller-provided scratch — the
    /// worker hot loop. Byte-identical results; no per-segment allocation
    /// once the scratch is warm.
    pub fn map_segment_with(
        &self,
        seg: &[u8],
        qid: u64,
        counter: &mut LazyHitCounter,
        scratch: &mut MapScratch,
    ) -> Option<(SubjectId, u32)> {
        self.mapper.sketch_segment_into(seg, scratch);
        let (sketch, trial_subjects) = scratch.parts();
        for (t, codes) in sketch.per_trial.iter().enumerate() {
            trial_subjects.clear();
            for &code in codes {
                self.lookup_into(t, code, trial_subjects);
            }
            counter.stats.probed += trial_subjects.len() as u64;
            trial_subjects.sort_unstable();
            trial_subjects.dedup();
            for &s in trial_subjects.iter() {
                counter.record(qid, s);
            }
        }
        counter.best(qid)
    }

    /// The per-trial deduplicated collision sets of one segment against
    /// this index's owned slots — the shard half of a router
    /// scatter-gather.
    ///
    /// Each returned inner vector is the sorted, deduplicated set of
    /// subjects colliding with the segment in that trial, restricted to
    /// codes whose slot this index owns. Because every `(trial, code)`
    /// entry lives in exactly one slot, the per-trial sets of disjoint
    /// slot ranges union (then re-deduplicate) into exactly the set the
    /// full index would have produced — the argmax over the union is the
    /// single-process answer.
    pub fn segment_partials_with(
        &self,
        seg: &[u8],
        scratch: &mut MapScratch,
    ) -> Vec<Vec<SubjectId>> {
        self.mapper.sketch_segment_into(seg, scratch);
        let (sketch, trial_subjects) = scratch.parts();
        let mut out = Vec::with_capacity(sketch.per_trial.len());
        for (t, codes) in sketch.per_trial.iter().enumerate() {
            trial_subjects.clear();
            for &code in codes {
                self.lookup_into(t, code, trial_subjects);
            }
            trial_subjects.sort_unstable();
            trial_subjects.dedup();
            out.push(trial_subjects.clone());
        }
        out
    }

    /// Map a batch of segments with a reused counter.
    ///
    /// `qid_base` must make every `(qid_base + i)` unique across all
    /// batches the counter has seen — workers pass a running segment
    /// count, which is exactly the lazy counter's reuse contract.
    pub fn map_batch(
        &self,
        segments: &[QuerySegment],
        qid_base: u64,
        counter: &mut LazyHitCounter,
    ) -> Vec<Mapping> {
        let mut scratch = MapScratch::new();
        self.map_batch_with(segments, qid_base, counter, &mut scratch)
    }

    /// [`ShardedIndex::map_batch`] with caller-provided scratch, reused
    /// across the whole batch (and, via the worker loop, across batches).
    pub fn map_batch_with(
        &self,
        segments: &[QuerySegment],
        qid_base: u64,
        counter: &mut LazyHitCounter,
        scratch: &mut MapScratch,
    ) -> Vec<Mapping> {
        let mut out = Vec::new();
        for (i, seg) in segments.iter().enumerate() {
            if let Some((subject, hits)) =
                self.map_segment_with(&seg.seq, qid_base + i as u64, counter, scratch)
            {
                out.push(Mapping {
                    read_idx: seg.read_idx,
                    end: seg.end,
                    subject,
                    hits,
                });
            }
        }
        out
    }
}

/// Owning shard of a sketch code.
#[inline]
fn shard_of(code: u64, n_shards: usize) -> usize {
    ((code.wrapping_mul(FIB) >> 32) as usize) % n_shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_core::{make_segments, MapperConfig};
    use jem_seq::SeqRecord;

    fn world() -> (JemMapper, Vec<SeqRecord>) {
        let mk = |seed: u64, n: usize| -> Vec<u8> {
            (0..n)
                .scan(seed, |s, _| {
                    *s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    Some(b"ACGT"[((*s >> 33) % 4) as usize])
                })
                .collect()
        };
        let subjects: Vec<SeqRecord> = (0..6)
            .map(|i| SeqRecord::new(format!("c{i}"), mk(i as u64 + 1, 4000)))
            .collect();
        let config = MapperConfig {
            k: 12,
            w: 8,
            trials: 8,
            ell: 300,
            seed: 5,
        };
        let reads: Vec<SeqRecord> = (0..6)
            .map(|i| SeqRecord::new(format!("r{i}"), subjects[i].seq[500..1400].to_vec()))
            .collect();
        (JemMapper::build(&subjects, &config), reads)
    }

    #[test]
    fn sharding_preserves_every_entry() {
        let (mapper, _) = world();
        let total = mapper.table().entry_count();
        for n_shards in [1usize, 2, 3, 8] {
            let sharded = ShardedIndex::new(mapper.clone(), n_shards);
            assert_eq!(sharded.n_shards(), n_shards);
            let counts = sharded.shard_entry_counts();
            assert_eq!(counts.len(), n_shards);
            assert_eq!(
                counts.iter().sum::<usize>(),
                total,
                "{n_shards} shards must repartition, not drop or duplicate"
            );
        }
    }

    #[test]
    fn any_shard_count_matches_the_offline_mapper() {
        let (mapper, reads) = world();
        let segments = make_segments(&reads, mapper.config().ell);
        let mut offline_counter = mapper.new_counter();
        for n_shards in [1usize, 2, 5, 16] {
            let sharded = ShardedIndex::new(mapper.clone(), n_shards);
            let mut counter = sharded.new_counter();
            for (qid, seg) in segments.iter().enumerate() {
                assert_eq!(
                    sharded.map_segment(&seg.seq, qid as u64, &mut counter),
                    mapper.map_segment(&seg.seq, qid as u64, &mut offline_counter),
                    "shard count {n_shards}, segment {qid}"
                );
            }
        }
    }

    #[test]
    fn batch_with_reused_counter_matches_map_segments() {
        let (mapper, reads) = world();
        let segments = make_segments(&reads, mapper.config().ell);
        let expected = mapper.map_segments(&segments);
        let sharded = ShardedIndex::new(mapper, 4);
        let mut counter = sharded.new_counter();
        // Split into small batches with a running qid base, as workers do.
        let mut got = Vec::new();
        let mut qid_base = 0u64;
        for chunk in segments.chunks(3) {
            got.extend(sharded.map_batch(chunk, qid_base, &mut counter));
            qid_base += chunk.len() as u64;
        }
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_shards_rejected() {
        let (mapper, _) = world();
        let _ = ShardedIndex::new(mapper, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_owned_range_rejected() {
        let (mapper, _) = world();
        let _ = ShardedIndex::with_slots(mapper, 4, 2..2);
    }

    #[test]
    #[should_panic(expected = "reaches past")]
    fn out_of_space_owned_range_rejected() {
        let (mapper, _) = world();
        let _ = ShardedIndex::with_slots(mapper, 4, 2..5);
    }

    /// Splitting the slot space across `with_slots` pieces must lose
    /// nothing and duplicate nothing — including the degenerate shapes:
    /// one slot, more slots than distinct codes (some slots empty), and a
    /// piece whose owned range holds zero entries.
    #[test]
    fn slot_pieces_partition_the_table_exactly() {
        let (mapper, _) = world();
        let total = mapper.table().entry_count();
        for (n_slots, cuts) in [
            (1usize, vec![0usize, 1]),
            (4, vec![0, 1, 4]),
            (256, vec![0, 3, 64, 256]), // far more slots than codes
        ] {
            let mut sum = 0usize;
            for pair in cuts.windows(2) {
                let piece = ShardedIndex::with_slots(mapper.clone(), n_slots, pair[0]..pair[1]);
                assert_eq!(piece.n_shards(), n_slots);
                assert_eq!(piece.owned_slots(), pair[0]..pair[1]);
                assert_eq!(piece.shard_entry_counts().len(), pair[1] - pair[0]);
                sum += piece.shard_entry_counts().iter().sum::<usize>();
            }
            assert_eq!(sum, total, "{n_slots} slots split at {cuts:?}");
        }
    }

    /// A fully-owned `with_slots` index maps identically to `new` (and to
    /// the offline mapper), for one slot and for many more slots than the
    /// table has distinct codes.
    #[test]
    fn fully_owned_slot_index_is_output_neutral() {
        let (mapper, reads) = world();
        let segments = make_segments(&reads, mapper.config().ell);
        let mut offline_counter = mapper.new_counter();
        for n_slots in [1usize, 7, 256] {
            let sharded = ShardedIndex::with_slots(mapper.clone(), n_slots, 0..n_slots);
            let mut counter = sharded.new_counter();
            for (qid, seg) in segments.iter().enumerate() {
                assert_eq!(
                    sharded.map_segment(&seg.seq, qid as u64, &mut counter),
                    mapper.map_segment(&seg.seq, qid as u64, &mut offline_counter),
                    "{n_slots} slots, segment {qid}"
                );
            }
        }
    }

    /// Per-trial partial sets from disjoint pieces union into exactly the
    /// full index's sets — the algebraic fact the router's merge rests on.
    /// An empty piece contributes empty sets and changes nothing.
    #[test]
    fn partials_from_pieces_union_to_the_full_sets() {
        let (mapper, reads) = world();
        let segments = make_segments(&reads, mapper.config().ell);
        let n_slots = 8usize;
        let full = ShardedIndex::new(mapper.clone(), n_slots);
        let pieces: Vec<ShardedIndex> = [0..2, 2..3, 3..8]
            .into_iter()
            .map(|r| ShardedIndex::with_slots(mapper.clone(), n_slots, r))
            .collect();
        let mut scratch = MapScratch::new();
        let mut nonempty_partial_seen = false;
        for seg in &segments {
            let expected = full.segment_partials_with(&seg.seq, &mut scratch);
            let mut union: Vec<Vec<SubjectId>> = vec![Vec::new(); expected.len()];
            for piece in &pieces {
                let part = piece.segment_partials_with(&seg.seq, &mut scratch);
                assert_eq!(part.len(), expected.len());
                nonempty_partial_seen |= part.iter().any(|set| !set.is_empty());
                for (t, set) in part.into_iter().enumerate() {
                    union[t].extend(set);
                }
            }
            for set in &mut union {
                set.sort_unstable();
                set.dedup();
            }
            assert_eq!(union, expected, "read {}", seg.read_idx);
        }
        assert!(
            nonempty_partial_seen,
            "world too small: no piece ever produced a collision"
        );
    }
}
