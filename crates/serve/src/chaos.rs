//! Fault-injecting TCP proxy for chaos-testing the serve layer.
//!
//! [`ChaosProxy`] sits between a [`Client`](crate::Client) and a running
//! server and damages traffic according to a [`ChaosPlan`] — the TCP twin
//! of `jem-psim`'s seeded fault plans, moved from the simulated MPI world
//! to the real wire. Five faults model what a flaky network or a dying
//! peer does to a connection:
//!
//! * **Delay** — hold the request before relaying (slow network, GC
//!   pause); exercises client timeouts and server admission timing.
//! * **Drop** — accept the connection and close it without forwarding
//!   anything (peer died pre-request); the client sees EOF.
//! * **Truncate** — forward only a prefix of the request frame, then
//!   close (peer died mid-write); the server must answer its next reader
//!   with a protocol error, never hang or panic.
//! * **Corrupt** — flip one bit of the request frame's header (magic or
//!   checksum bytes, so damage is always detectable); the server must
//!   reply with a typed `Error`, which the proxy relays back.
//! * **Slam** — forward the request intact, then close the client side
//!   before the response returns (peer died post-request); the server
//!   does the work, the client sees EOF.
//!
//! Plans are plain data in the `jem-psim::fault` idiom: cloneable,
//! buildable by hand ([`ChaosPlan::then`]), parseable from a spec string
//! ([`ChaosPlan::parse`], round-tripping through `Display`), or drawn
//! deterministically from a seed ([`ChaosPlan::random`]). The chaos suite
//! (`tests/chaos.rs`) asserts the serve-layer invariant under every plan:
//! each client call terminates with a typed [`ServeError`](crate::ServeError)
//! or a correct result — never a hang, a panic, or a wrong mapping.

use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::protocol::MAX_BODY;

/// Frame header size: magic (8) + body length (8) + checksum (8).
const HEADER: usize = 24;

/// What the proxy does to one proxied connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Relay untouched (the control case every plan needs some of).
    Pass,
    /// Hold the request for `ms` milliseconds before relaying.
    Delay {
        /// Injected latency in milliseconds.
        ms: u64,
    },
    /// Close the connection without forwarding anything.
    Drop,
    /// Forward only the first `bytes` bytes of the request, then close.
    Truncate {
        /// Prefix length forwarded before the cut.
        bytes: usize,
    },
    /// Flip one bit of the request header. `bit` selects (byte, bit)
    /// within the magic and checksum fields only — never the length field,
    /// so the damage is always *detectable* (bad magic or checksum
    /// mismatch) rather than a length that parses but starves the read.
    Corrupt {
        /// Bit selector; reduced modulo the corruptible positions.
        bit: usize,
    },
    /// Relay the request intact, then close the client side before the
    /// response comes back.
    Slam,
}

impl ChaosAction {
    /// Does this action damage traffic (anything but [`ChaosAction::Pass`])?
    pub fn is_fault(&self) -> bool {
        !matches!(self, ChaosAction::Pass)
    }
}

impl fmt::Display for ChaosAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosAction::Pass => write!(f, "pass"),
            ChaosAction::Delay { ms } => write!(f, "delay*{ms}"),
            ChaosAction::Drop => write!(f, "drop"),
            ChaosAction::Truncate { bytes } => write!(f, "truncate*{bytes}"),
            ChaosAction::Corrupt { bit } => write!(f, "corrupt*{bit}"),
            ChaosAction::Slam => write!(f, "slam"),
        }
    }
}

/// A deterministic schedule of per-connection faults. Connection `i`
/// (0-based, in proxy accept order) gets action `i mod len` — plans cycle,
/// so a short plan drives an arbitrarily long test. The empty plan passes
/// everything through.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    actions: Vec<ChaosAction>,
}

impl ChaosPlan {
    /// The transparent plan: every connection relays untouched.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Append `action` for the next connection slot.
    pub fn then(mut self, action: ChaosAction) -> Self {
        self.actions.push(action);
        self
    }

    /// All scheduled actions, in connection order.
    pub fn actions(&self) -> &[ChaosAction] {
        &self.actions
    }

    /// Is the plan fault-free (empty or all-pass)?
    pub fn is_transparent(&self) -> bool {
        self.actions.iter().all(|a| !a.is_fault())
    }

    /// The action for the `conn`-th accepted connection (plans cycle).
    pub fn action_for(&self, conn: u64) -> ChaosAction {
        if self.actions.is_empty() {
            return ChaosAction::Pass;
        }
        self.actions[(conn % self.actions.len() as u64) as usize]
    }

    /// Draw a deterministic plan of `n` actions from `seed` (splitmix64,
    /// same generator as `jem-psim`'s plans). Every fault kind is in the
    /// draw, interleaved with passes so correct traffic is exercised under
    /// the same run; same seed, same plan.
    pub fn random(seed: u64, n: usize) -> Self {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = ChaosPlan::none();
        for _ in 0..n {
            let action = match next() % 6 {
                0 => ChaosAction::Pass,
                1 => ChaosAction::Delay {
                    ms: 1 + next() % 20,
                },
                2 => ChaosAction::Drop,
                3 => ChaosAction::Truncate {
                    bytes: (next() % (HEADER as u64 + 8)) as usize,
                },
                4 => ChaosAction::Corrupt {
                    bit: (next() % 128) as usize,
                },
                _ => ChaosAction::Slam,
            };
            plan = plan.then(action);
        }
        plan
    }

    /// Parse a comma-separated spec: `pass`, `delay*MS`, `drop`,
    /// `truncate*BYTES`, `corrupt*BIT`, `slam` — e.g.
    /// `pass,corrupt*7,slam`. `Display` emits the same grammar.
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::none();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, param) = match entry.split_once('*') {
                Some((k, p)) => (k.trim(), Some(p.trim())),
                None => (entry, None),
            };
            let number = || -> Result<u64, String> {
                param
                    .ok_or_else(|| format!("chaos entry {entry:?}: {kind} needs *N"))?
                    .parse()
                    .map_err(|_| format!("chaos entry {entry:?}: bad number"))
            };
            let action = match kind {
                "pass" => ChaosAction::Pass,
                "drop" => ChaosAction::Drop,
                "slam" => ChaosAction::Slam,
                "delay" => ChaosAction::Delay { ms: number()? },
                "truncate" => ChaosAction::Truncate {
                    bytes: number()? as usize,
                },
                "corrupt" => ChaosAction::Corrupt {
                    bit: number()? as usize,
                },
                other => {
                    return Err(format!(
                        "chaos entry {entry:?}: unknown kind {other:?} \
                         (pass|delay|drop|truncate|corrupt|slam)"
                    ))
                }
            };
            plan = plan.then(action);
        }
        Ok(plan)
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.actions.is_empty() {
            return write!(f, "(transparent)");
        }
        for (i, action) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{action}")?;
        }
        Ok(())
    }
}

/// A running fault-injecting proxy in front of one upstream server.
///
/// Each accepted connection is handled on its own thread (faults like
/// `Delay` must not stall unrelated connections), reads exactly one
/// request frame, applies the plan's action for its accept ordinal, and —
/// for surviving connections — relays the upstream response until EOF.
/// Every proxied socket carries read/write timeouts, so no action can
/// wedge the proxy itself.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    injected: Arc<AtomicU64>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral local port, forwarding to `upstream`
    /// under `plan`.
    pub fn start(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let injected = Arc::new(AtomicU64::new(0));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let accepted = Arc::clone(&accepted);
            let injected = Arc::clone(&injected);
            std::thread::spawn(move || loop {
                let client = match listener.accept() {
                    Ok((client, _)) => client,
                    Err(_) => continue,
                };
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let ordinal = accepted.fetch_add(1, Ordering::SeqCst);
                let action = plan.action_for(ordinal);
                if action.is_fault() {
                    injected.fetch_add(1, Ordering::SeqCst);
                }
                std::thread::spawn(move || {
                    // A connection thread may fail for any reason a real
                    // network peer can: that is the point of the harness.
                    let _ = proxy_one(client, upstream, action);
                });
            })
        };
        Ok(ChaosProxy {
            addr,
            shutdown,
            accepted,
            injected,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address — point the [`Client`](crate::Client)
    /// here instead of at the server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Faulty (non-pass) actions applied so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Stop accepting and join the accept thread. Connections already in
    /// flight finish on their own (their sockets carry timeouts).
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the accept loop
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_inner();
        }
    }
}

/// Socket timeout for every proxied stream: generous enough for a real
/// index pass, small enough that an abandoned connection thread dies on
/// its own.
const PROXY_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Handle one proxied connection under `action`.
fn proxy_one(
    mut client: TcpStream,
    upstream: SocketAddr,
    action: ChaosAction,
) -> std::io::Result<()> {
    client.set_read_timeout(Some(PROXY_IO_TIMEOUT))?;
    client.set_write_timeout(Some(PROXY_IO_TIMEOUT))?;
    if action == ChaosAction::Drop {
        return client.shutdown(Shutdown::Both);
    }
    let mut frame = read_request_frame(&mut client)?;
    match action {
        ChaosAction::Drop => unreachable!("handled before the frame read"),
        ChaosAction::Delay { ms } => {
            std::thread::sleep(Duration::from_millis(ms));
            relay(&frame, &mut client, upstream, true)
        }
        ChaosAction::Pass => relay(&frame, &mut client, upstream, true),
        ChaosAction::Slam => {
            // Deliver the request, then die before the answer returns.
            relay(&frame, &mut client, upstream, false)?;
            client.shutdown(Shutdown::Both)
        }
        ChaosAction::Truncate { bytes } => {
            frame.truncate(bytes.min(frame.len()));
            // Forward the stump and hang up both sides: the server's
            // read fails cleanly, the client sees EOF.
            let mut server = connect_upstream(upstream)?;
            server.write_all(&frame)?;
            server.shutdown(Shutdown::Both)?;
            client.shutdown(Shutdown::Both)
        }
        ChaosAction::Corrupt { bit } => {
            corrupt_header(&mut frame, bit);
            relay(&frame, &mut client, upstream, true)
        }
    }
}

/// Read one full request frame (header + body) from the client. A body
/// length beyond the protocol maximum means the client itself is broken;
/// forwarding just the header is enough for the server to reject it.
fn read_request_frame(client: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; HEADER];
    client.read_exact(&mut header)?;
    let body_len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let mut frame = header.to_vec();
    if body_len <= MAX_BODY {
        let mut body = vec![0u8; body_len as usize];
        client.read_exact(&mut body)?;
        frame.extend_from_slice(&body);
    }
    Ok(frame)
}

/// Flip one header bit selected by `bit`, restricted to the magic
/// (offsets 0..8) and checksum (offsets 16..24) fields — 128 corruptible
/// positions, every one of them detectable by the server.
fn corrupt_header(frame: &mut [u8], bit: usize) {
    let position = bit % 128;
    let byte_sel = position / 8;
    let offset = if byte_sel < 8 { byte_sel } else { byte_sel + 8 };
    if offset < frame.len() {
        frame[offset] ^= 1 << (position % 8);
    }
}

fn connect_upstream(upstream: SocketAddr) -> std::io::Result<TcpStream> {
    let server = TcpStream::connect_timeout(&upstream, PROXY_IO_TIMEOUT)?;
    server.set_read_timeout(Some(PROXY_IO_TIMEOUT))?;
    server.set_write_timeout(Some(PROXY_IO_TIMEOUT))?;
    Ok(server)
}

/// Forward `frame` upstream; when `want_response`, stream the server's
/// reply back to the client until the server closes its end.
fn relay(
    frame: &[u8],
    client: &mut TcpStream,
    upstream: SocketAddr,
    want_response: bool,
) -> std::io::Result<()> {
    let mut server = connect_upstream(upstream)?;
    server.write_all(frame)?;
    if want_response {
        std::io::copy(&mut server, client)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_cycles_and_counts() {
        let plan = ChaosPlan::none()
            .then(ChaosAction::Pass)
            .then(ChaosAction::Drop)
            .then(ChaosAction::Delay { ms: 5 });
        assert_eq!(plan.action_for(0), ChaosAction::Pass);
        assert_eq!(plan.action_for(1), ChaosAction::Drop);
        assert_eq!(plan.action_for(2), ChaosAction::Delay { ms: 5 });
        assert_eq!(plan.action_for(3), ChaosAction::Pass, "plans cycle");
        assert_eq!(plan.action_for(4), ChaosAction::Drop);
        assert!(!plan.is_transparent());
        assert!(ChaosPlan::none().is_transparent());
        assert_eq!(ChaosPlan::none().action_for(7), ChaosAction::Pass);
    }

    #[test]
    fn random_plans_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::random(42, 24);
        let b = ChaosPlan::random(42, 24);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.actions().len(), 24);
        assert_ne!(ChaosPlan::random(43, 24), a, "seed must matter");
        assert!(
            a.actions().iter().any(|x| x.is_fault()),
            "a 24-draw plan should contain faults"
        );
    }

    #[test]
    fn parse_display_roundtrip() {
        let plan = ChaosPlan::none()
            .then(ChaosAction::Pass)
            .then(ChaosAction::Delay { ms: 12 })
            .then(ChaosAction::Drop)
            .then(ChaosAction::Truncate { bytes: 10 })
            .then(ChaosAction::Corrupt { bit: 77 })
            .then(ChaosAction::Slam);
        assert_eq!(ChaosPlan::parse(&plan.to_string()).unwrap(), plan);
        let random = ChaosPlan::random(7, 16);
        assert_eq!(ChaosPlan::parse(&random.to_string()).unwrap(), random);
        assert_eq!(ChaosPlan::none().to_string(), "(transparent)");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(ChaosPlan::parse("explode").is_err());
        assert!(ChaosPlan::parse("delay").is_err());
        assert!(ChaosPlan::parse("delay*x").is_err());
        assert!(ChaosPlan::parse("truncate*").is_err());
        assert!(ChaosPlan::parse("").unwrap().actions().is_empty());
        assert!(ChaosPlan::parse(" , ").unwrap().actions().is_empty());
    }

    #[test]
    fn corruption_targets_only_detectable_header_bytes() {
        for bit in 0..300 {
            let mut frame = vec![0u8; HEADER + 16];
            corrupt_header(&mut frame, bit);
            let damaged: Vec<usize> = frame
                .iter()
                .enumerate()
                .filter(|(_, &b)| b != 0)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(damaged.len(), 1, "exactly one bit flips (bit {bit})");
            let at = damaged[0];
            assert!(
                at < 8 || (16..24).contains(&at),
                "bit {bit} damaged offset {at}: length field must stay intact"
            );
        }
    }
}
