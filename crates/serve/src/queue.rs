//! A bounded MPMC job queue built on `Mutex` + `Condvar` (std-only).
//!
//! This is the backpressure point of the service: the accept loop pushes
//! with the non-blocking [`BoundedQueue::try_push`] and turns `Full` into a
//! `Busy` reply instead of buffering unboundedly, while workers block in
//! [`BoundedQueue::pop_batch`] until work or shutdown arrives. Closing the
//! queue wakes every waiter but lets them drain what is already queued —
//! that drain is what makes shutdown graceful.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (backpressure — reply `Busy`).
    Full,
    /// The queue was closed (shutdown in progress).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity multi-producer/multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `cap` items (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Enqueue without blocking. Returns the current depth (after the
    /// push) on success — the queue-depth metric is sampled from this.
    /// A refused item is handed back along with the reason, so the caller
    /// can still answer its connection (`Busy`).
    pub fn try_push(&self, item: T) -> Result<usize, (T, PushError)> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        if s.closed {
            return Err((item, PushError::Closed));
        }
        if s.items.len() >= self.cap {
            return Err((item, PushError::Full));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeue up to `max` items, blocking while the queue is empty and
    /// open. Returns an empty vec only when the queue is closed *and*
    /// fully drained — the worker's signal to exit.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut s = self.state.lock().expect("queue lock poisoned");
        loop {
            if !s.items.is_empty() {
                let take = max.min(s.items.len());
                let batch: Vec<T> = s.items.drain(..take).collect();
                // More work may remain for the other workers.
                if !s.items.is_empty() {
                    self.ready.notify_one();
                }
                return batch;
            }
            if s.closed {
                return Vec::new();
            }
            s = self.ready.wait(s).expect("queue lock poisoned");
        }
    }

    /// Close the queue: producers are refused from now on, consumers
    /// drain the remainder and then observe the close. Idempotent.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("queue lock poisoned");
        s.closed = true;
        drop(s);
        self.ready.notify_all();
    }

    /// Current number of queued items (snapshot).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.pop_batch(10), vec![1, 2]);
    }

    #[test]
    fn full_queue_refuses_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        // Draining one slot readmits.
        assert_eq!(q.pop_batch(1), vec![1]);
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn close_refuses_producers_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err((2, PushError::Closed)));
        assert_eq!(q.pop_batch(4), vec![1], "queued work must drain");
        assert!(q.pop_batch(4).is_empty(), "then the close is observed");
    }

    #[test]
    fn close_is_idempotent() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        q.close();
        q.close();
        assert!(q.pop_batch(1).is_empty());
    }

    #[test]
    fn batch_respects_max() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(4).len(), 4);
        assert_eq!(q.pop_batch(4).len(), 2);
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(2));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![42]);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<BoundedQueue<u8>> = Arc::new(BoundedQueue::new(2));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(consumer.join().unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
