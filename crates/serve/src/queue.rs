//! Bounded MPMC job queues built on `Mutex` + `Condvar` (std-only).
//!
//! This is the backpressure point of the service: the accept loop pushes
//! with the non-blocking [`BoundedQueue::try_push`] and turns `Full` into a
//! `Busy` reply instead of buffering unboundedly, while workers block in
//! [`BoundedQueue::pop_batch`] until work or shutdown arrives. Closing the
//! queue wakes every waiter but lets them drain what is already queued —
//! that drain is what makes shutdown graceful.
//!
//! Two queues share those semantics:
//!
//! * [`BoundedQueue`] — the original single-FIFO queue, still used where
//!   every producer is equivalent.
//! * [`FairQueue`] — per-client deficit-round-robin lanes, each with its
//!   *own* capacity, so one greedy client fills only its own lane (and
//!   sees `Busy`) while other clients' lanes stay shallow and keep their
//!   latency. Workers drain lanes round-robin, each lane spending a
//!   per-visit deficit measured in request cost (segments), which is what
//!   makes the fairness *weighted*: a client sending huge batches drains
//!   no faster than one sending small ones.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (backpressure — reply `Busy`).
    Full,
    /// The queue was closed (shutdown in progress).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity multi-producer/multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `cap` items (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be at least 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Enqueue without blocking. Returns the current depth (after the
    /// push) on success — the queue-depth metric is sampled from this.
    /// A refused item is handed back along with the reason, so the caller
    /// can still answer its connection (`Busy`).
    pub fn try_push(&self, item: T) -> Result<usize, (T, PushError)> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        if s.closed {
            return Err((item, PushError::Closed));
        }
        if s.items.len() >= self.cap {
            return Err((item, PushError::Full));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeue up to `max` items, blocking while the queue is empty and
    /// open. Returns an empty vec only when the queue is closed *and*
    /// fully drained — the worker's signal to exit.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut s = self.state.lock().expect("queue lock poisoned");
        loop {
            if !s.items.is_empty() {
                let take = max.min(s.items.len());
                let batch: Vec<T> = s.items.drain(..take).collect();
                // More work may remain for the other workers.
                if !s.items.is_empty() {
                    self.ready.notify_one();
                }
                return batch;
            }
            if s.closed {
                return Vec::new();
            }
            s = self.ready.wait(s).expect("queue lock poisoned");
        }
    }

    /// Close the queue: producers are refused from now on, consumers
    /// drain the remainder and then observe the close. Idempotent.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("queue lock poisoned");
        s.closed = true;
        drop(s);
        self.ready.notify_all();
    }

    /// Current number of queued items (snapshot).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// --- weighted fair queueing ---------------------------------------------

/// Depths reported by a successful [`FairQueue::try_push`]: the pushing
/// client's lane depth feeds the per-lane gauge, the total feeds the
/// existing `serve.queue_depth` histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FairDepth {
    /// Items queued in the pushed lane, after the push.
    pub lane: usize,
    /// Items queued across all lanes, after the push.
    pub total: usize,
}

struct Lane<T> {
    key: String,
    /// Deficit-round-robin credit, in cost units. Topped up by `quantum`
    /// each visit; an emptied lane forfeits what is left (standard DRR —
    /// idle lanes must not hoard credit).
    deficit: u64,
    items: VecDeque<(u64, T)>,
}

struct FairState<T> {
    lanes: Vec<Lane<T>>,
    /// Round-robin cursor into `lanes`.
    cursor: usize,
    closed: bool,
    total: usize,
}

/// Per-client fair queue: one bounded FIFO lane per client id, drained
/// deficit-round-robin. The anonymous lane (key `""`) serves untagged
/// clients and absorbs new ids once `max_lanes` distinct lanes exist, so
/// hostile id churn cannot grow memory or dodge its own backlog.
pub struct FairQueue<T> {
    state: Mutex<FairState<T>>,
    ready: Condvar,
    lane_cap: usize,
    max_lanes: usize,
    quantum: u64,
}

impl<T> FairQueue<T> {
    /// A queue of up to `max_lanes` lanes holding `lane_cap` items each,
    /// spending `quantum` cost units per lane visit (all ≥ 1).
    pub fn new(lane_cap: usize, max_lanes: usize, quantum: u64) -> Self {
        assert!(lane_cap >= 1, "lane capacity must be at least 1");
        assert!(max_lanes >= 1, "lane count must be at least 1");
        FairQueue {
            state: Mutex::new(FairState {
                lanes: Vec::new(),
                cursor: 0,
                closed: false,
                total: 0,
            }),
            ready: Condvar::new(),
            lane_cap,
            max_lanes,
            quantum: quantum.max(1),
        }
    }

    /// Enqueue into `lane_key`'s lane without blocking, charging `cost`
    /// (≥ 1 is enforced) against that lane's round-robin share. `Full`
    /// means *that lane* is full — other clients may still be admitted,
    /// which is the whole point.
    pub fn try_push(
        &self,
        lane_key: &str,
        cost: u64,
        item: T,
    ) -> Result<FairDepth, (T, PushError)> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        if s.closed {
            return Err((item, PushError::Closed));
        }
        // Route new ids past the lane bound into the anonymous lane.
        let mut key = lane_key;
        if !s.lanes.iter().any(|l| l.key == key) && s.lanes.len() >= self.max_lanes {
            key = "";
        }
        let lane = match s.lanes.iter_mut().find(|l| l.key == key) {
            Some(lane) => lane,
            None => {
                s.lanes.push(Lane {
                    key: key.to_string(),
                    deficit: 0,
                    items: VecDeque::new(),
                });
                s.lanes.last_mut().expect("just pushed")
            }
        };
        if lane.items.len() >= self.lane_cap {
            return Err((item, PushError::Full));
        }
        lane.items.push_back((cost.max(1), item));
        let depth = FairDepth {
            lane: lane.items.len(),
            total: s.total + 1,
        };
        s.total += 1;
        drop(s);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeue up to `max` items deficit-round-robin, blocking while the
    /// queue is empty and open. Returns an empty vec only when the queue
    /// is closed *and* fully drained.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let max = max.max(1);
        let mut s = self.state.lock().expect("queue lock poisoned");
        loop {
            if s.total > 0 {
                let batch = Self::drain(&mut s, max, self.quantum);
                if s.total > 0 {
                    self.ready.notify_one();
                }
                return batch;
            }
            if s.closed {
                return Vec::new();
            }
            s = self.ready.wait(s).expect("queue lock poisoned");
        }
    }

    /// One DRR sweep over the lanes. Terminates because every visit adds
    /// `quantum` to the visited lane's deficit, so any head item becomes
    /// affordable after finitely many visits.
    fn drain(s: &mut FairState<T>, max: usize, quantum: u64) -> Vec<T> {
        let mut batch = Vec::with_capacity(max.min(s.total));
        while batch.len() < max && s.total > 0 {
            debug_assert!(!s.lanes.is_empty(), "total > 0 implies a lane");
            s.cursor %= s.lanes.len();
            let lane = &mut s.lanes[s.cursor];
            lane.deficit = lane.deficit.saturating_add(quantum);
            while batch.len() < max {
                match lane.items.front() {
                    Some(&(cost, _)) if cost <= lane.deficit => {
                        let (cost, item) = lane.items.pop_front().expect("front exists");
                        lane.deficit -= cost;
                        s.total -= 1;
                        batch.push(item);
                    }
                    _ => break,
                }
            }
            if lane.items.is_empty() {
                // Emptied lanes forfeit their remaining deficit and their
                // slot (freeing it for a fresh id).
                s.lanes.remove(s.cursor);
            } else {
                s.cursor += 1;
            }
        }
        batch
    }

    /// Close the queue: producers are refused from now on, consumers
    /// drain the remainder and then observe the close. Idempotent.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("queue lock poisoned");
        s.closed = true;
        drop(s);
        self.ready.notify_all();
    }

    /// Total queued items across all lanes (snapshot).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").total
    }

    /// True when no items are queued in any lane.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(lane key, depth)` for every live lane — the per-lane gauge sweep.
    pub fn lane_depths(&self) -> Vec<(String, usize)> {
        let s = self.state.lock().expect("queue lock poisoned");
        s.lanes
            .iter()
            .map(|l| (l.key.clone(), l.items.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.pop_batch(10), vec![1, 2]);
    }

    #[test]
    fn full_queue_refuses_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        // Draining one slot readmits.
        assert_eq!(q.pop_batch(1), vec![1]);
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn close_refuses_producers_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err((2, PushError::Closed)));
        assert_eq!(q.pop_batch(4), vec![1], "queued work must drain");
        assert!(q.pop_batch(4).is_empty(), "then the close is observed");
    }

    #[test]
    fn close_is_idempotent() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        q.close();
        q.close();
        assert!(q.pop_batch(1).is_empty());
    }

    #[test]
    fn batch_respects_max() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_batch(4).len(), 4);
        assert_eq!(q.pop_batch(4).len(), 2);
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(2));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![42]);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<BoundedQueue<u8>> = Arc::new(BoundedQueue::new(2));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(consumer.join().unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    // --- FairQueue ------------------------------------------------------

    fn push(q: &FairQueue<&'static str>, lane: &str, item: &'static str) -> FairDepth {
        q.try_push(lane, 1, item).unwrap()
    }

    #[test]
    fn fair_queue_interleaves_lanes_round_robin() {
        let q: FairQueue<&str> = FairQueue::new(16, 8, 1);
        for item in ["g1", "g2", "g3"] {
            push(&q, "greedy", item);
        }
        push(&q, "polite", "p1");
        // DRR with unit costs and quantum 1 alternates lanes: the polite
        // item rides out in position 1, not behind the whole greedy lane.
        assert_eq!(q.pop_batch(4), vec!["g1", "p1", "g2", "g3"]);
    }

    #[test]
    fn fair_queue_lane_cap_is_per_client() {
        let q: FairQueue<&str> = FairQueue::new(2, 8, 1);
        push(&q, "greedy", "g1");
        push(&q, "greedy", "g2");
        // Greedy's lane is full...
        assert_eq!(q.try_push("greedy", 1, "g3"), Err(("g3", PushError::Full)));
        // ...but a different client is still admitted.
        assert_eq!(push(&q, "polite", "p1"), FairDepth { lane: 1, total: 3 });
    }

    #[test]
    fn fair_queue_weighted_by_cost() {
        let q: FairQueue<&str> = FairQueue::new(16, 8, 2);
        // "heavy" queues one cost-6 batch; "light" queues three cost-1s.
        q.try_push("heavy", 6, "H").unwrap();
        for item in ["l1", "l2", "l3"] {
            q.try_push("light", 1, item).unwrap();
        }
        // Heavy's visits accrue deficit 2, 4, 6 — its cost-6 batch only
        // becomes affordable on the third visit, by which time light has
        // fully drained: heavy cannot crowd out light by batching.
        assert_eq!(q.pop_batch(10), vec!["l1", "l2", "l3", "H"]);
    }

    #[test]
    fn fair_queue_new_ids_past_bound_share_anonymous_lane() {
        let q: FairQueue<&str> = FairQueue::new(2, 2, 1);
        push(&q, "a", "a1");
        push(&q, "b", "b1");
        // Two lanes exist; c and d collapse into the "" lane, whose cap
        // they now share.
        push(&q, "c", "c1");
        push(&q, "d", "d1");
        assert_eq!(q.try_push("e", 1, "e1"), Err(("e1", PushError::Full)));
        assert_eq!(q.len(), 4);
        let depths = q.lane_depths();
        assert!(depths.contains(&("".to_string(), 2)), "depths: {depths:?}");
    }

    #[test]
    fn fair_queue_close_drains_then_reports_closed() {
        let q: FairQueue<&str> = FairQueue::new(4, 4, 1);
        push(&q, "a", "a1");
        q.close();
        assert_eq!(q.try_push("a", 1, "a2"), Err(("a2", PushError::Closed)));
        assert_eq!(q.pop_batch(4), vec!["a1"], "queued work must drain");
        assert!(q.pop_batch(4).is_empty(), "then the close is observed");
    }

    #[test]
    fn fair_queue_blocked_consumer_wakes_on_push_and_close() {
        let q: Arc<FairQueue<u8>> = Arc::new(FairQueue::new(2, 2, 1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push("x", 1, 42).unwrap();
        assert_eq!(consumer.join().unwrap(), vec![42]);
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(consumer.join().unwrap().is_empty());
    }

    #[test]
    fn fair_queue_emptied_lane_frees_its_slot() {
        let q: FairQueue<&str> = FairQueue::new(2, 2, 1);
        push(&q, "a", "a1");
        push(&q, "b", "b1");
        assert_eq!(q.pop_batch(4).len(), 2);
        // Both lanes drained away entirely; a fresh id gets its own lane
        // again instead of the anonymous one.
        assert_eq!(push(&q, "c", "c1"), FairDepth { lane: 1, total: 1 });
        assert_eq!(q.lane_depths(), vec![("c".to_string(), 1)]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn fair_queue_zero_lane_cap_rejected() {
        let _ = FairQueue::<u8>::new(0, 4, 1);
    }
}
