//! The scatter-gather router: a front-end that fans each query batch out
//! to independent `jem serve` shard processes and merges their per-trial
//! collision sets back into the single-process answer.
//!
//! Architecture (DESIGN.md §13):
//!
//! * **registry** — a validated [`ShardRegistry`]: slot range + primary
//!   address (+ optional hedge replica) per shard, exact disjoint cover of
//!   the slot space. Shard ids are registry indices; they are the ids a
//!   [`Response::Degraded`] answer names.
//! * **scatter** — one thread per shard per query (`std::thread::scope`),
//!   each asking its shard for [`SegmentPartials`]
//!   ([`Request::MapPartial`]) with the router's *remaining* deadline
//!   budget forwarded, so a shard never works past the instant the client
//!   stopped waiting.
//! * **hedging** — a shard that has not answered within the straggler
//!   threshold gets a second, racing request on its replica (or the
//!   primary again); first answer wins, the loser is discarded. Hedges
//!   fire on silence, not on fast failures — fast failures are the
//!   breaker's department.
//! * **health gating** — a consecutive-failure circuit breaker per shard.
//!   An open breaker skips the shard without burning a connection; after a
//!   cooldown drawn from the shared [`RetryPolicy`] schedule (capped
//!   exponential in the number of opens, deterministic seeded jitter) one
//!   probe is let through — success closes the breaker, failure reopens it
//!   with a longer cooldown.
//! * **merge** — per-trial subject sets from disjoint slot ranges union
//!   associatively and commutatively ([`merge_partials`]); the argmax over
//!   the union reproduces the lazy counter's answer bit for bit, so a
//!   fully-gathered query renders byte-identically to the single-process
//!   TSV.
//! * **degraded answers** — under [`Request::MapDegraded`], missing shards
//!   shrink the union instead of failing the query: the reply is
//!   [`Response::Degraded`] carrying the merge of the survivors plus the
//!   exact ids of the shards that are missing. A strict [`Request::Map`]
//!   instead fails with a typed error naming the same ids. The chaos
//!   invariant: every query gets a typed error, a degraded answer naming
//!   its gaps, or the correct full answer — never silence, never a wrong
//!   answer dressed as a full one.

use crate::client::{Client, RetryPolicy};
use crate::protocol::{
    read_frame_versioned, write_frame_versioned, Request, Response, SegmentPartials, ServerInfo,
};
use crate::registry::ShardRegistry;
use crate::ServeError;
use jem_core::{Mapping, QuerySegment};
use jem_index::SubjectId;
use jem_obs::{MetricsRecorder, Recorder, Snapshot, Span};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`start_router`]ed front-end.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Socket connect/read/write timeout per shard attempt.
    pub io_timeout: Duration,
    /// Straggler threshold: how long to wait for a shard before hedging a
    /// second request to its replica (or re-dispatching to the primary).
    /// `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Consecutive failures that open a shard's circuit breaker (≥ 1).
    pub breaker_failures: u32,
    /// Cooldown schedule for reopening: an open breaker admits a probe
    /// after `pause_before(opens)` — capped exponential with deterministic
    /// seeded jitter, the same vocabulary client retries use.
    pub breaker_cooldown: RetryPolicy,
    /// Router-side budget per query. Combined (min) with the client's own
    /// deadline; the *remaining* budget is forwarded to every shard.
    pub deadline: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            io_timeout: Duration::from_secs(10),
            hedge_after: Some(Duration::from_millis(50)),
            breaker_failures: 3,
            breaker_cooldown: RetryPolicy::new(8, Duration::from_millis(250)),
            deadline: None,
        }
    }
}

impl RouterConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.breaker_failures == 0 {
            return Err(ServeError::Config(
                "breaker_failures must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Per-shard circuit-breaker state.
#[derive(Debug, Default)]
struct Breaker {
    /// Failures since the last success.
    consecutive_failures: u32,
    /// Times this breaker has opened since the last success — the
    /// exponent of the cooldown schedule.
    opens: u32,
    /// While `Some`, the breaker is open until the instant (then
    /// half-open: one probe is admitted and its outcome decides).
    open_until: Option<Instant>,
}

/// State shared by the accept loop and per-query gather threads.
struct RouterShared {
    registry: ShardRegistry,
    config: RouterConfig,
    states: Vec<Mutex<Breaker>>,
    recorder: Arc<MetricsRecorder>,
    shutdown: AtomicBool,
    /// Lazily fetched shard `Info`, rewritten to the router's slot count.
    info: RwLock<Option<ServerInfo>>,
}

impl RouterShared {
    /// Whether the breaker admits a request to `shard_id` right now
    /// (closed, or open past its cooldown — the half-open probe).
    fn admit(&self, shard_id: usize) -> bool {
        let st = self.states[shard_id].lock().expect("breaker lock poisoned");
        match st.open_until {
            Some(until) => Instant::now() >= until,
            None => true,
        }
    }

    /// Record a request outcome for `shard_id` and move the breaker.
    fn report(&self, shard_id: usize, ok: bool) {
        let mut st = self.states[shard_id].lock().expect("breaker lock poisoned");
        if ok {
            if st.open_until.is_some() {
                self.recorder.add("router.breaker_close", 1);
            }
            *st = Breaker::default();
            return;
        }
        st.consecutive_failures += 1;
        // A failure while open (the probe) reopens immediately; a closed
        // breaker opens once the consecutive-failure threshold is hit.
        if st.open_until.is_some() || st.consecutive_failures >= self.config.breaker_failures {
            st.opens = st.opens.saturating_add(1);
            let cooldown = self.config.breaker_cooldown.pause_before(st.opens as usize);
            st.open_until = Some(Instant::now() + cooldown);
            self.recorder.add("router.breaker_open", 1);
        }
    }
}

/// What a finished router run reports: the metrics snapshot plus a
/// human-readable status text (topology + final breaker states) for the
/// `--snapshot` file.
pub struct RouterReport {
    /// Final metrics snapshot.
    pub metrics: Snapshot,
    /// Rendered registry + breaker status.
    pub status: String,
}

/// Handle to a running router: its address, live metrics, and the two
/// ways a run ends (local [`RouterHandle::shutdown`], or
/// [`RouterHandle::join`] after a remote [`Request::Shutdown`]).
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's metrics recorder (live; snapshot any time).
    pub fn recorder(&self) -> &MetricsRecorder {
        &self.shared.recorder
    }

    /// Rendered topology + live breaker states.
    pub fn status(&self) -> String {
        status_text(&self.shared)
    }

    /// Stop accepting, then report. Queries already dispatched finish on
    /// their own threads (each bounded by socket timeouts).
    pub fn shutdown(mut self) -> RouterReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        self.join_inner()
    }

    /// Wait for a remote [`Request::Shutdown`] to end the run, then
    /// report.
    pub fn join(mut self) -> RouterReport {
        self.join_inner()
    }

    fn join_inner(&mut self) -> RouterReport {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        RouterReport {
            metrics: self.shared.recorder.snapshot(),
            status: status_text(&self.shared),
        }
    }
}

/// Bind `addr` and start routing queries across `registry`'s shards.
/// Returns once the listener is live.
pub fn start_router(
    registry: ShardRegistry,
    addr: &str,
    config: &RouterConfig,
) -> Result<RouterHandle, ServeError> {
    config.validate()?;
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let recorder = Arc::new(MetricsRecorder::new());
    recorder.add("router.started", 1);
    recorder.add("router.shards_configured", registry.len() as u64);
    let states = (0..registry.len())
        .map(|_| Mutex::new(Breaker::default()))
        .collect();
    let shared = Arc::new(RouterShared {
        registry,
        config: config.clone(),
        states,
        recorder,
        shutdown: AtomicBool::new(false),
        info: RwLock::new(None),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    Ok(RouterHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

/// Reply on `conn`, tolerating a peer that already hung up.
fn respond(conn: &mut TcpStream, recorder: &MetricsRecorder, resp: &Response) {
    if write_frame_versioned(conn, &resp.encode(), resp.wire_version()).is_err() {
        recorder.add("router.write_errors", 1);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    let recorder = &*shared.recorder;
    loop {
        let mut conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        recorder.add("router.connections", 1);
        if conn
            .set_read_timeout(Some(shared.config.io_timeout))
            .is_err()
            || conn
                .set_write_timeout(Some(shared.config.io_timeout))
                .is_err()
        {
            continue;
        }
        let received = Instant::now();
        match read_frame_versioned(&mut conn)
            .and_then(|(version, body)| Request::decode_versioned(&body, version))
        {
            Err(e) => {
                recorder.add("router.protocol_errors", 1);
                respond(&mut conn, recorder, &Response::Error(e.to_string()));
            }
            Ok(Request::Ping) => respond(&mut conn, recorder, &Response::Pong),
            Ok(Request::Info) => {
                let resp = router_info(shared);
                respond(&mut conn, recorder, &resp);
            }
            Ok(Request::Shutdown) => {
                recorder.add("router.shutdown_requests", 1);
                respond(&mut conn, recorder, &Response::ShuttingDown);
                return;
            }
            Ok(Request::Reload { .. }) => respond(
                &mut conn,
                recorder,
                &Response::Error(
                    "the router holds no index; reload the shard servers directly".into(),
                ),
            ),
            Ok(Request::MapPartial { .. }) => respond(
                &mut conn,
                recorder,
                &Response::Error(
                    "the router serves merged answers; MapPartial is a shard-tier request".into(),
                ),
            ),
            Ok(Request::Map {
                segments,
                deadline_ms,
            }) => dispatch(shared, conn, segments, deadline_ms, received, false),
            Ok(Request::MapDegraded {
                segments,
                deadline_ms,
            }) => dispatch(shared, conn, segments, deadline_ms, received, true),
        }
    }
}

/// Answer one mapping query on its own thread: the gather can spend a
/// hedge threshold + shard latency, and the accept loop must keep
/// admitting other clients meanwhile. Backpressure lives at the shard
/// tier (bounded queues answering `Busy`); the router itself is a thin
/// fan-out.
fn dispatch(
    shared: &Arc<RouterShared>,
    mut conn: TcpStream,
    segments: Vec<QuerySegment>,
    deadline_ms: Option<u64>,
    received: Instant,
    allow_degraded: bool,
) {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let resp = answer(&shared, &segments, deadline_ms, received, allow_degraded);
        respond(&mut conn, &shared.recorder, &resp);
        let latency = u64::try_from(received.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared.recorder.span_ns("router/request", latency);
    });
}

/// The router's `Info`: any healthy shard's info with the shard count
/// rewritten to the global slot count (all shards serve the same index
/// parameters — only slot ownership differs). Cached after first success.
fn router_info(shared: &Arc<RouterShared>) -> Response {
    if let Some(info) = shared.info.read().expect("info lock poisoned").clone() {
        return Response::Info(info);
    }
    for spec in shared.registry.shards() {
        let client = Client::new(spec.addr.clone()).with_timeout(shared.config.io_timeout);
        if let Ok(mut info) = client.info() {
            info.shards = shared.registry.n_slots();
            *shared.info.write().expect("info lock poisoned") = Some(info.clone());
            return Response::Info(info);
        }
    }
    Response::Error("no shard reachable to answer Info".into())
}

/// How one shard's share of a gather ended.
enum ShardOutcome {
    /// Validated partials, ready to merge.
    Partials(Vec<SegmentPartials>),
    /// The shard is missing from the merge (unreachable, invalid answer,
    /// busy, or breaker-skipped).
    Missing,
    /// The deadline budget ran out for this shard (it is not unhealthy —
    /// nobody is waiting anymore).
    Expired,
}

/// A completed scatter-gather: per-shard partials plus the gap list.
struct Gather {
    present: Vec<(usize, Vec<SegmentPartials>)>,
    /// Shard ids missing from the merge, ascending (registry indices).
    missing: Vec<u32>,
    any_expired: bool,
}

/// The min of the router's own budget and the client's request deadline.
fn effective_budget(router: Option<Duration>, client_ms: Option<u64>) -> Option<Duration> {
    let client = client_ms.map(Duration::from_millis);
    match (router, client) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

fn gather(
    shared: &Arc<RouterShared>,
    segments: &[QuerySegment],
    deadline_ms: Option<u64>,
    received: Instant,
) -> Gather {
    let recorder = &*shared.recorder;
    recorder.add("router.queries", 1);
    recorder.observe("router.fanout", shared.registry.len() as u64);
    let _pass = Span::enter(recorder as &dyn Recorder, "router/gather");
    let budget = effective_budget(shared.config.deadline, deadline_ms);
    let n = shared.registry.len();
    let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|shard_id| {
                scope.spawn(move || shard_outcome(shared, shard_id, segments, budget, received))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(ShardOutcome::Missing))
            .collect()
    });
    let mut g = Gather {
        present: Vec::new(),
        missing: Vec::new(),
        any_expired: false,
    };
    for (shard_id, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            ShardOutcome::Partials(p) => g.present.push((shard_id, p)),
            ShardOutcome::Missing => g.missing.push(shard_id as u32),
            ShardOutcome::Expired => {
                g.any_expired = true;
                g.missing.push(shard_id as u32);
            }
        }
    }
    g
}

/// One shard's share of a gather: breaker gate, fetch (with hedging),
/// validation, breaker report.
fn shard_outcome(
    shared: &Arc<RouterShared>,
    shard_id: usize,
    segments: &[QuerySegment],
    budget: Option<Duration>,
    received: Instant,
) -> ShardOutcome {
    let recorder = &*shared.recorder;
    // Remaining budget from here: the router's elapsed time is the
    // client's elapsed time, so shards only ever get what is left.
    let remaining = match budget {
        Some(b) => match b.checked_sub(received.elapsed()) {
            Some(r) if r > Duration::ZERO => Some(r),
            _ => return ShardOutcome::Expired,
        },
        None => None,
    };
    if !shared.admit(shard_id) {
        recorder.add("router.breaker_skips", 1);
        return ShardOutcome::Missing;
    }
    match fetch_partials(shared, shard_id, segments, remaining) {
        Ok(partials) => {
            if validate_partials(segments, &partials).is_err() {
                // A shard answering mismatched echoes is unhealthy, and
                // its data must never alias into the merge.
                recorder.add("router.invalid_partials", 1);
                recorder.add_dyn(format!("router.shard.{shard_id}.failures"), 1);
                shared.report(shard_id, false);
                ShardOutcome::Missing
            } else {
                recorder.add_dyn(format!("router.shard.{shard_id}.ok"), 1);
                shared.report(shard_id, true);
                ShardOutcome::Partials(partials)
            }
        }
        // A shard shedding on deadline is healthy — the budget died, not
        // the shard. Same for backpressure: `Busy` is load, not illness.
        Err(ServeError::Expired) => ShardOutcome::Expired,
        Err(ServeError::Busy) => {
            recorder.add("router.shard_busy", 1);
            ShardOutcome::Missing
        }
        Err(_) => {
            recorder.add_dyn(format!("router.shard.{shard_id}.failures"), 1);
            shared.report(shard_id, false);
            ShardOutcome::Missing
        }
    }
}

/// Fetch one shard's partials, hedging to the replica (or re-dispatching
/// to the primary) if the first attempt goes silent past the straggler
/// threshold. First answer wins; a losing attempt's result is discarded.
fn fetch_partials(
    shared: &Arc<RouterShared>,
    shard_id: usize,
    segments: &[QuerySegment],
    budget: Option<Duration>,
) -> Result<Vec<SegmentPartials>, ServeError> {
    let spec = &shared.registry.shards()[shard_id];
    let (tx, rx) = mpsc::channel::<(bool, Result<Vec<SegmentPartials>, ServeError>)>();
    let io_timeout = shared.config.io_timeout;
    let spawn_attempt = |addr: String, hedged: bool| {
        let tx = tx.clone();
        let segments = segments.to_vec();
        std::thread::spawn(move || {
            let mut client = Client::new(addr).with_timeout(io_timeout);
            if let Some(d) = budget {
                client = client.with_deadline(d);
            }
            let _ = tx.send((hedged, client.map_segments_partial(&segments)));
        });
    };
    spawn_attempt(spec.addr.clone(), false);
    // Hard stop for the whole fetch: the budget if there is one, else a
    // generous multiple of the socket timeout (each attempt thread is
    // itself bounded by connect/read/write timeouts).
    let hard = budget.unwrap_or_else(|| io_timeout.saturating_mul(3));
    let started = Instant::now();
    // Wait for the primary up to the straggler threshold, then hedge.
    let mut first = None;
    match shared.config.hedge_after {
        Some(hedge_after) if hedge_after < hard => match rx.recv_timeout(hedge_after) {
            Ok(outcome) => first = Some(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                shared.recorder.add("router.hedges", 1);
                let target = spec.replica.clone().unwrap_or_else(|| spec.addr.clone());
                spawn_attempt(target, true);
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {}
        },
        _ => {}
    }
    // From here only the attempt threads hold senders: the loop ends on
    // the first success, when every attempt has failed (disconnect), or
    // at the hard stop.
    drop(tx);
    let mut last_err = None;
    loop {
        let outcome = match first.take() {
            Some(outcome) => outcome,
            None => {
                let Some(left) = hard.checked_sub(started.elapsed()) else {
                    break;
                };
                match rx.recv_timeout(left) {
                    Ok(outcome) => outcome,
                    Err(_) => break,
                }
            }
        };
        match outcome {
            (hedged, Ok(partials)) => {
                if hedged {
                    shared.recorder.add("router.hedge_wins", 1);
                }
                return Ok(partials);
            }
            (_, Err(e)) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("shard {shard_id} did not answer within the gather bound"),
        ))
    }))
}

/// Build the response for one query batch from a completed gather.
fn answer(
    shared: &Arc<RouterShared>,
    segments: &[QuerySegment],
    deadline_ms: Option<u64>,
    received: Instant,
    allow_degraded: bool,
) -> Response {
    let recorder = &*shared.recorder;
    let g = gather(shared, segments, deadline_ms, received);
    let merged = |present: &[(usize, Vec<SegmentPartials>)]| {
        let lists: Vec<&Vec<SegmentPartials>> = present.iter().map(|(_, p)| p).collect();
        merge_partials(segments, &lists)
    };
    if g.missing.is_empty() {
        return match merged(&g.present) {
            Ok(mappings) => {
                recorder.add("router.full_answers", 1);
                Response::Mappings(mappings)
            }
            Err(e) => Response::Error(e.to_string()),
        };
    }
    if !allow_degraded {
        return if g.any_expired {
            recorder.add("router.expired", 1);
            Response::Expired
        } else {
            Response::Error(format!(
                "shards {:?} unavailable; a strict Map fails whole — retry, or ask for a \
                 degraded answer (MapDegraded / jem query --allow-degraded)",
                g.missing
            ))
        };
    }
    if g.present.is_empty() {
        return if g.any_expired {
            recorder.add("router.expired", 1);
            Response::Expired
        } else {
            Response::Error(format!("all shards unavailable ({:?})", g.missing))
        };
    }
    match merged(&g.present) {
        Ok(mappings) => {
            recorder.add("router.degraded", 1);
            Response::Degraded {
                mappings,
                missing: g.missing,
            }
        }
        Err(e) => Response::Error(e.to_string()),
    }
}

/// Check that `partials` is a plausible shard answer for `segments`: one
/// entry per segment, in order, echoing each segment's identity. A gather
/// merges answers from independent processes — this is what stops a
/// shard's (or a fault injector's) mismatched answer from aliasing into
/// another query's merge.
pub fn validate_partials(
    segments: &[QuerySegment],
    partials: &[SegmentPartials],
) -> Result<(), ServeError> {
    if partials.len() != segments.len() {
        return Err(ServeError::protocol(format!(
            "shard answered {} partials for {} segments",
            partials.len(),
            segments.len()
        )));
    }
    for (seg, p) in segments.iter().zip(partials) {
        if p.read_idx != seg.read_idx || p.end != seg.end {
            return Err(ServeError::protocol(format!(
                "shard partial echoes read {} {:?} for requested read {} {:?}",
                p.read_idx, p.end, seg.read_idx, seg.end
            )));
        }
    }
    Ok(())
}

/// Merge per-shard [`SegmentPartials`] into final mappings, reproducing
/// the lazy hit counter's argmax exactly.
///
/// For each segment and trial, the shards' deduplicated subject sets are
/// unioned (set union is associative, commutative, and idempotent — shard
/// order and shard count cannot change the result); a subject's hit count
/// is the number of trials whose union contains it; the winner is the
/// highest count, ties to the smallest subject id — precisely the rule
/// `LazyHitCounter::record` applies, so a full gather is byte-identical
/// to the single-process answer. Output is sorted in [`Mapping`]'s total
/// order. Every shard's list must pass [`validate_partials`].
pub fn merge_partials<L: AsRef<[SegmentPartials]>>(
    segments: &[QuerySegment],
    per_shard: &[L],
) -> Result<Vec<Mapping>, ServeError> {
    for shard in per_shard {
        validate_partials(segments, shard.as_ref())?;
    }
    let mut mappings = Vec::new();
    let mut union: Vec<SubjectId> = Vec::new();
    let mut counts: BTreeMap<SubjectId, u32> = BTreeMap::new();
    for (i, seg) in segments.iter().enumerate() {
        counts.clear();
        let trials = per_shard
            .iter()
            .map(|s| s.as_ref()[i].trials.len())
            .max()
            .unwrap_or(0);
        for t in 0..trials {
            union.clear();
            for shard in per_shard {
                if let Some(set) = shard.as_ref()[i].trials.get(t) {
                    union.extend_from_slice(set);
                }
            }
            union.sort_unstable();
            union.dedup();
            for &s in &union {
                *counts.entry(s).or_insert(0) += 1;
            }
        }
        // The lazy counter's argmax: a strictly higher count wins; an
        // equal count keeps the earlier (smaller) subject id. Ascending
        // iteration makes "keep on ties" exactly that rule.
        let mut best: Option<(SubjectId, u32)> = None;
        for (&subject, &count) in counts.iter() {
            match best {
                Some((_, best_count)) if count <= best_count => {}
                _ => best = Some((subject, count)),
            }
        }
        if let Some((subject, hits)) = best {
            mappings.push(Mapping {
                read_idx: seg.read_idx,
                end: seg.end,
                subject,
                hits,
            });
        }
    }
    mappings.sort_unstable();
    Ok(mappings)
}

/// Render the topology and live breaker states (the `--snapshot` text).
fn status_text(shared: &RouterShared) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# jem-router status");
    let _ = writeln!(out, "epoch\t{}", shared.registry.epoch());
    let _ = writeln!(out, "slots\t{}", shared.registry.n_slots());
    let _ = writeln!(out, "topology\t{}", shared.registry);
    let now = Instant::now();
    for (i, spec) in shared.registry.shards().iter().enumerate() {
        let st = shared.states[i].lock().expect("breaker lock poisoned");
        let phase = match st.open_until {
            Some(until) if now < until => "open",
            Some(_) => "half-open",
            None => "closed",
        };
        let _ = writeln!(
            out,
            "shard\t{i}\t{}-{}\t{}\treplica={}\tbreaker={phase}\tfailures={}\topens={}",
            spec.slots.start,
            spec.slots.end,
            spec.addr,
            spec.replica.as_deref().unwrap_or("-"),
            st.consecutive_failures,
            st.opens
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_core::ReadEnd;

    fn seg(read_idx: u32, end: ReadEnd) -> QuerySegment {
        QuerySegment {
            read_idx,
            end,
            seq: Vec::new(),
        }
    }

    fn partial(read_idx: u32, end: ReadEnd, trials: Vec<Vec<SubjectId>>) -> SegmentPartials {
        SegmentPartials {
            read_idx,
            end,
            trials,
        }
    }

    #[test]
    fn merge_reproduces_the_lazy_counter_tiebreak() {
        let segments = vec![seg(0, ReadEnd::Prefix)];
        // Subject 9 collides in trials {0,1}; subject 2 in trials {1,2}.
        // Equal counts — the smaller id must win, exactly like the lazy
        // counter's "equal count keeps the smaller subject" rule.
        let shards = vec![vec![partial(
            0,
            ReadEnd::Prefix,
            vec![vec![9], vec![2, 9], vec![2]],
        )]];
        let merged = merge_partials(&segments, &shards).unwrap();
        assert_eq!(
            merged,
            vec![Mapping {
                read_idx: 0,
                end: ReadEnd::Prefix,
                subject: 2,
                hits: 2
            }]
        );
        // A strictly higher count beats a smaller id.
        let shards = vec![vec![partial(
            0,
            ReadEnd::Prefix,
            vec![vec![0, 7], vec![7], vec![7]],
        )]];
        let merged = merge_partials(&segments, &shards).unwrap();
        assert_eq!(merged[0].subject, 7);
        assert_eq!(merged[0].hits, 3);
    }

    #[test]
    fn merge_unions_across_shards_without_double_counting() {
        let segments = vec![seg(3, ReadEnd::Suffix)];
        // Subject 5 collides with *different codes of the same trial* on
        // two different shards: the union must count that trial once.
        let a = vec![partial(3, ReadEnd::Suffix, vec![vec![5], vec![]])];
        let b = vec![partial(3, ReadEnd::Suffix, vec![vec![5], vec![5]])];
        let merged = merge_partials(&segments, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(merged[0].hits, 2, "trial 0 must count once, not twice");
        // Order independence: any shard permutation merges identically.
        let swapped = merge_partials(&segments, &[b, a]).unwrap();
        assert_eq!(merged, swapped);
    }

    #[test]
    fn merge_with_no_collisions_maps_nothing() {
        let segments = vec![seg(0, ReadEnd::Prefix), seg(0, ReadEnd::Suffix)];
        let shards = vec![vec![
            partial(0, ReadEnd::Prefix, vec![Vec::new(); 4]),
            partial(0, ReadEnd::Suffix, vec![Vec::new(); 4]),
        ]];
        assert!(merge_partials(&segments, &shards).unwrap().is_empty());
        let none: Vec<Vec<SegmentPartials>> = Vec::new();
        assert!(merge_partials(&segments, &none).unwrap().is_empty());
    }

    #[test]
    fn mismatched_echoes_refuse_to_merge() {
        let segments = vec![seg(1, ReadEnd::Prefix)];
        // Wrong read index.
        let wrong_read = vec![partial(2, ReadEnd::Prefix, vec![vec![1]])];
        assert!(merge_partials(&segments, &[wrong_read]).is_err());
        // Wrong end.
        let wrong_end = vec![partial(1, ReadEnd::Suffix, vec![vec![1]])];
        assert!(merge_partials(&segments, &[wrong_end]).is_err());
        // Wrong count.
        let wrong_len: Vec<SegmentPartials> = Vec::new();
        assert!(merge_partials(&segments, &[wrong_len]).is_err());
    }

    #[test]
    fn effective_budget_takes_the_min() {
        let s = Duration::from_secs(1);
        assert_eq!(effective_budget(None, None), None);
        assert_eq!(effective_budget(Some(s), None), Some(s));
        assert_eq!(effective_budget(None, Some(500)), Some(s / 2));
        assert_eq!(effective_budget(Some(s), Some(500)), Some(s / 2));
        assert_eq!(effective_budget(Some(s / 4), Some(500)), Some(s / 4));
    }

    #[test]
    fn breaker_opens_after_threshold_and_probe_decides() {
        let registry = ShardRegistry::parse("0-1@127.0.0.1:1").unwrap();
        let config = RouterConfig {
            breaker_failures: 2,
            breaker_cooldown: RetryPolicy::new(4, Duration::from_millis(1))
                .with_cap(Duration::from_millis(2)),
            ..RouterConfig::default()
        };
        let shared = RouterShared {
            states: vec![Mutex::new(Breaker::default())],
            registry,
            config,
            recorder: Arc::new(MetricsRecorder::new()),
            shutdown: AtomicBool::new(false),
            info: RwLock::new(None),
        };
        assert!(shared.admit(0));
        shared.report(0, false);
        assert!(shared.admit(0), "one failure is below the threshold");
        shared.report(0, false);
        assert!(!shared.admit(0), "second failure must open the breaker");
        std::thread::sleep(Duration::from_millis(10));
        assert!(shared.admit(0), "cooldown elapsed: half-open probe");
        shared.report(0, false);
        assert!(!shared.admit(0), "failed probe must reopen immediately");
        std::thread::sleep(Duration::from_millis(10));
        assert!(shared.admit(0));
        shared.report(0, true);
        assert!(shared.admit(0), "success closes the breaker");
        let snap = shared.recorder.snapshot();
        assert_eq!(snap.counter("router.breaker_open"), 2);
        assert_eq!(snap.counter("router.breaker_close"), 1);
    }
}
