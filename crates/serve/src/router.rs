//! The scatter-gather router: a front-end that fans each query batch out
//! to independent `jem serve` shard processes and merges their per-trial
//! collision sets back into the single-process answer.
//!
//! Architecture (DESIGN.md §13, §16):
//!
//! * **registry** — a validated [`ShardRegistry`]: slot range + primary
//!   address (+ optional hedge replica) per shard, exact disjoint cover of
//!   the slot space. Shard ids are registry indices; they are the ids a
//!   [`Response::Degraded`] answer names.
//! * **ingress** — the accept thread only accepts; each connection is
//!   read on its own handler thread under an idle deadline, so a
//!   half-open or slow-loris peer is reaped (`router.reaped_idle`)
//!   instead of pinning admission. Mapping requests pass two gates before
//!   dispatch: the per-client admission quota ([`AdmissionControl`],
//!   answering [`Response::Throttled`] to v3 peers and `Busy` to older
//!   revisions) and a router-wide in-flight cap.
//! * **scatter** — one thread per shard per query (`std::thread::scope`),
//!   each asking its shard for [`SegmentPartials`]
//!   ([`Request::MapPartial`]) with the router's *remaining* deadline
//!   budget forwarded, so a shard never works past the instant the client
//!   stopped waiting.
//! * **pooled connections** — shard fetches go through a
//!   [`ShardConnPool`]: health-checked keep-alive connections per shard
//!   endpoint (bounded idle set, age-based reaping, eviction on error),
//!   so a steady query load reuses sockets instead of opening one per
//!   shard per query — no FD exhaustion under fan-out, no handshake on
//!   the tail. Requests are wrapped in a `JEMSRV3` [`Request::Tagged`]
//!   envelope (forwarding the originating client id when there is one),
//!   which is what makes the shard keep the connection alive.
//! * **hedging** — a shard that has not answered within the straggler
//!   threshold gets a second, racing request on its replica (or the
//!   primary again); first answer wins, the loser is discarded. Hedges
//!   fire on silence, not on fast failures — fast failures are the
//!   breaker's department.
//! * **health gating** — a consecutive-failure circuit breaker per shard.
//!   An open breaker skips the shard without burning a connection; after a
//!   cooldown drawn from the shared [`RetryPolicy`] schedule (capped
//!   exponential in the number of opens, deterministic seeded jitter)
//!   exactly one probe is let through (the half-open slot is reserved
//!   under the breaker lock, so racing fetches cannot double-probe) —
//!   success closes the breaker, failure reopens it with a longer
//!   cooldown. A shard's hard failure also evicts its pooled
//!   connections: a breaker-open endpoint never serves stale sockets.
//! * **merge** — per-trial subject sets from disjoint slot ranges union
//!   associatively and commutatively ([`merge_partials`]); the argmax over
//!   the union reproduces the lazy counter's answer bit for bit, so a
//!   fully-gathered query renders byte-identically to the single-process
//!   TSV.
//! * **degraded answers** — under [`Request::MapDegraded`], missing shards
//!   shrink the union instead of failing the query: the reply is
//!   [`Response::Degraded`] carrying the merge of the survivors plus the
//!   exact ids of the shards that are missing. A strict [`Request::Map`]
//!   instead fails with a typed error naming the same ids. The chaos
//!   invariant: every query gets a typed error, a degraded answer naming
//!   its gaps, or the correct full answer — never silence, never a wrong
//!   answer dressed as a full one.
//!
//! [`AdmissionControl`]: crate::AdmissionControl

use crate::admission::{AdmissionControl, QuotaConfig};
use crate::client::{unexpected, Client, RetryPolicy};
use crate::protocol::{
    read_frame_versioned, write_frame_versioned, ProtocolVersion, Request, Response,
    SegmentPartials, ServerInfo,
};
use crate::registry::ShardRegistry;
use crate::server::is_timeout;
use crate::ServeError;
use jem_core::{Mapping, QuerySegment};
use jem_index::SubjectId;
use jem_obs::{MetricsRecorder, Recorder, Snapshot, Span};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The identity the router stamps on shard fetches when the originating
/// request carried none — shard-side quotas then see the router's
/// anonymous traffic as one client instead of a flood of strangers.
const ROUTER_CLIENT_ID: &str = "jem-router";

/// Tuning knobs of a [`start_router`]ed front-end.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Socket connect/read/write timeout per shard attempt.
    pub io_timeout: Duration,
    /// How long an ingress connection may sit idle before it is reaped
    /// (half-open / slow-loris defense).
    pub idle_timeout: Duration,
    /// Straggler threshold: how long to wait for a shard before hedging a
    /// second request to its replica (or re-dispatching to the primary).
    /// `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Consecutive failures that open a shard's circuit breaker (≥ 1).
    pub breaker_failures: u32,
    /// Cooldown schedule for reopening: an open breaker admits a probe
    /// after `pause_before(opens)` — capped exponential with deterministic
    /// seeded jitter, the same vocabulary client retries use.
    pub breaker_cooldown: RetryPolicy,
    /// Router-side budget per query. Combined (min) with the client's own
    /// deadline; the *remaining* budget is forwarded to every shard.
    pub deadline: Option<Duration>,
    /// Per-client admission quota at the router front door. `rate == 0.0`
    /// (the default) disables admission control.
    pub quota: QuotaConfig,
    /// Router-wide cap on concurrently dispatched queries; past it new
    /// mapping requests are answered `Busy` (≥ 1).
    pub max_inflight: usize,
    /// Max simultaneous live ingress connections; past the cap new
    /// connections are answered `Busy` and closed instead of pinning
    /// another handler thread (≥ 1) — the same flood/slow-loris bound the
    /// shard servers enforce.
    pub max_conns: usize,
    /// Idle pooled connections kept per shard endpoint. `0` disables
    /// reuse (every fetch connects fresh, the pre-pool behavior).
    pub pool_max_idle: usize,
    /// Oldest a pooled connection may be before checkout discards it.
    /// Keep it *below* the shard servers' `idle_timeout` so the pool
    /// retires a socket before the shard's reaper does.
    pub pool_max_age: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(2),
            hedge_after: Some(Duration::from_millis(50)),
            breaker_failures: 3,
            breaker_cooldown: RetryPolicy::new(8, Duration::from_millis(250)),
            deadline: None,
            quota: QuotaConfig::default(),
            max_inflight: 256,
            max_conns: 1024,
            pool_max_idle: 4,
            pool_max_age: Duration::from_millis(1500),
        }
    }
}

impl RouterConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.breaker_failures == 0 {
            return Err(ServeError::Config(
                "breaker_failures must be at least 1".into(),
            ));
        }
        if self.max_inflight == 0 {
            return Err(ServeError::Config("max_inflight must be at least 1".into()));
        }
        if self.max_conns == 0 {
            return Err(ServeError::Config("max_conns must be at least 1".into()));
        }
        if self.idle_timeout.is_zero() {
            return Err(ServeError::Config("idle_timeout must be positive".into()));
        }
        self.quota.validate().map_err(ServeError::Config)
    }
}

/// One idle pooled connection and when it was last checked in.
struct PooledConn {
    stream: TcpStream,
    since: Instant,
}

/// A bounded pool of health-checked keep-alive connections per shard
/// endpoint. Checkout prefers the most recently used socket (it is the
/// most likely to still be alive), discards ones past `max_age` or whose
/// health peek fails, and counts every decision
/// (`router.pool_{hit,miss,evict}`). [`ShardConnPool::exchange`] is the
/// full fetch path: reuse a pooled connection when one is healthy,
/// connect fresh otherwise, and absorb one stale-socket failure by
/// retrying on a fresh connection — which is also what reconnects the
/// pool after a shard restart. Exchanges through the pool must be
/// idempotent requests (the router's fetches are).
pub struct ShardConnPool {
    max_idle: usize,
    max_age: Duration,
    conns: Mutex<HashMap<String, VecDeque<PooledConn>>>,
    recorder: Arc<MetricsRecorder>,
}

impl ShardConnPool {
    /// A pool keeping at most `max_idle` connections per endpoint, each
    /// for at most `max_age` after check-in.
    pub fn new(max_idle: usize, max_age: Duration, recorder: Arc<MetricsRecorder>) -> Self {
        ShardConnPool {
            max_idle,
            max_age,
            conns: Mutex::new(HashMap::new()),
            recorder,
        }
    }

    /// Is this idle socket still usable? A keep-alive peer between
    /// requests has nothing to send, so a non-blocking peek must report
    /// "would block": readable data means a desynchronized stream, a
    /// zero-byte read means the peer closed, and any other error means
    /// the socket is dead.
    fn healthy(stream: &TcpStream) -> bool {
        if stream.set_nonblocking(true).is_err() {
            return false;
        }
        let mut probe = [0u8; 1];
        let alive = matches!(stream.peek(&mut probe), Err(ref e) if is_timeout(e));
        alive && stream.set_nonblocking(false).is_ok()
    }

    /// Take a healthy pooled connection for `addr`, evicting stale and
    /// dead ones found on the way. `None` means the caller connects
    /// fresh.
    fn checkout(&self, addr: &str) -> Option<TcpStream> {
        let mut conns = self.conns.lock().expect("pool lock poisoned");
        let queue = conns.get_mut(addr)?;
        while let Some(pooled) = queue.pop_back() {
            if pooled.since.elapsed() > self.max_age || !Self::healthy(&pooled.stream) {
                self.recorder.add("router.pool_evict", 1);
                continue;
            }
            self.recorder.add("router.pool_hit", 1);
            return Some(pooled.stream);
        }
        None
    }

    /// Return a connection to `addr`'s idle set after a successful
    /// exchange, discarding the oldest if the set is full.
    fn checkin(&self, addr: &str, stream: TcpStream) {
        if self.max_idle == 0 {
            return; // pooling disabled: every fetch connects fresh
        }
        let mut conns = self.conns.lock().expect("pool lock poisoned");
        let queue = conns.entry(addr.to_string()).or_default();
        queue.push_back(PooledConn {
            stream,
            since: Instant::now(),
        });
        while queue.len() > self.max_idle {
            queue.pop_front();
            self.recorder.add("router.pool_evict", 1);
        }
    }

    /// Drop every pooled connection for `addr` — called when the endpoint
    /// hard-fails, so a breaker-open shard never serves stale sockets on
    /// its next probe.
    pub fn evict_endpoint(&self, addr: &str) {
        let mut conns = self.conns.lock().expect("pool lock poisoned");
        if let Some(queue) = conns.remove(addr) {
            self.recorder.add("router.pool_evict", queue.len() as u64);
        }
    }

    /// How many idle connections the pool currently holds for `addr`.
    pub fn idle(&self, addr: &str) -> usize {
        let conns = self.conns.lock().expect("pool lock poisoned");
        conns.get(addr).map_or(0, VecDeque::len)
    }

    /// One request/response round-trip against `addr`, through a pooled
    /// connection when a healthy one is idle, else a fresh one (checked
    /// in afterwards for the next exchange). A reused socket that turns
    /// out to be dead mid-exchange — the shard restarted, or its reaper
    /// beat our age bound — is absorbed by retrying once on a fresh
    /// connection; `req` must therefore be idempotent.
    pub fn exchange(
        &self,
        addr: &str,
        req: &Request,
        timeout: Duration,
    ) -> Result<Response, ServeError> {
        let body = req.encode();
        let version = req.wire_version();
        if let Some(mut conn) = self.checkout(addr) {
            match Self::roundtrip(&mut conn, &body, version) {
                // The pooled socket died underneath us — or its server is
                // mid-shutdown (a restart in progress): fall through to a
                // fresh connection instead of failing the fetch. If the
                // endpoint really is gone, the fresh connect fails typed.
                Err(ServeError::Io(_)) | Ok(Response::ShuttingDown) => {
                    self.recorder.add("router.pool_evict", 1)
                }
                Ok(resp) => {
                    self.checkin(addr, conn);
                    return Ok(resp);
                }
                Err(e) => return Err(e),
            }
        } else {
            self.recorder.add("router.pool_miss", 1);
        }
        let mut conn = Self::connect(addr, timeout)?;
        let resp = Self::roundtrip(&mut conn, &body, version)?;
        self.checkin(addr, conn);
        Ok(resp)
    }

    fn connect(addr: &str, timeout: Duration) -> Result<TcpStream, ServeError> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ServeError::protocol(format!("address {addr:?} resolves to nothing")))?;
        let conn = TcpStream::connect_timeout(&resolved, timeout)?;
        conn.set_read_timeout(Some(timeout))?;
        conn.set_write_timeout(Some(timeout))?;
        Ok(conn)
    }

    fn roundtrip(
        conn: &mut TcpStream,
        body: &[u8],
        version: ProtocolVersion,
    ) -> Result<Response, ServeError> {
        write_frame_versioned(conn, body, version)?;
        let (_, resp_body) = read_frame_versioned(conn)?;
        Response::decode(&resp_body)
    }
}

/// Per-shard circuit-breaker state.
#[derive(Debug, Default)]
struct Breaker {
    /// Failures since the last success.
    consecutive_failures: u32,
    /// Times this breaker has opened since the last success — the
    /// exponent of the cooldown schedule.
    opens: u32,
    /// While `Some`, the breaker is open until the instant (then
    /// half-open: one probe is admitted and its outcome decides).
    open_until: Option<Instant>,
    /// The half-open probe is in flight: `admit` reserved it and no
    /// further request passes until `report` delivers its outcome. This
    /// is what makes "exactly one probe" true under racing fetches.
    probing: bool,
}

/// State shared by the accept loop, connection handlers, and per-query
/// gather threads.
struct RouterShared {
    registry: ShardRegistry,
    config: RouterConfig,
    states: Vec<Mutex<Breaker>>,
    admission: AdmissionControl,
    pool: Arc<ShardConnPool>,
    recorder: Arc<MetricsRecorder>,
    shutdown: AtomicBool,
    /// The bound address — a remote `Shutdown` self-connects to wake the
    /// accept loop out of its blocking accept.
    addr: SocketAddr,
    /// Concurrently dispatched queries, bounded by
    /// [`RouterConfig::max_inflight`].
    inflight: AtomicUsize,
    /// Live ingress connections, bounded by [`RouterConfig::max_conns`].
    live_conns: AtomicUsize,
    /// Lazily fetched shard `Info`, rewritten to the router's slot count.
    info: RwLock<Option<ServerInfo>>,
}

/// An admission granted by a shard's breaker, to be resolved by
/// [`BreakerAdmit::report`]. When the admission holds the half-open probe
/// slot, the slot is released on drop if no report ever arrives — a panic
/// (or any early return) on the fetch path frees the probe for the next
/// query instead of wedging the shard out of rotation forever.
struct BreakerAdmit<'a> {
    shared: &'a RouterShared,
    shard_id: usize,
    /// This admission reserved the half-open probe slot.
    probe: bool,
    reported: bool,
}

impl BreakerAdmit<'_> {
    /// Deliver the request's outcome to the breaker.
    fn report(mut self, ok: bool) {
        self.reported = true;
        self.shared.report(self.shard_id, ok);
    }
}

impl Drop for BreakerAdmit<'_> {
    fn drop(&mut self) {
        if self.probe && !self.reported {
            let mut st = self.shared.states[self.shard_id]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st.probing = false;
        }
    }
}

impl RouterShared {
    /// Whether the breaker admits a request to `shard_id` right now:
    /// closed, or open past its cooldown — in which case the single
    /// half-open probe slot is reserved for the returned admission and
    /// concurrent callers are refused until [`BreakerAdmit::report`]
    /// decides (or the admission drops unreported, releasing the slot).
    fn admit(&self, shard_id: usize) -> Option<BreakerAdmit<'_>> {
        let mut st = self.states[shard_id].lock().expect("breaker lock poisoned");
        let probe = match st.open_until {
            Some(until) => {
                if Instant::now() >= until && !st.probing {
                    st.probing = true;
                    true
                } else {
                    return None;
                }
            }
            None => false,
        };
        Some(BreakerAdmit {
            shared: self,
            shard_id,
            probe,
            reported: false,
        })
    }

    /// Record a request outcome for `shard_id` and move the breaker.
    fn report(&self, shard_id: usize, ok: bool) {
        let mut st = self.states[shard_id].lock().expect("breaker lock poisoned");
        st.probing = false;
        if ok {
            if st.open_until.is_some() {
                self.recorder.add("router.breaker_close", 1);
            }
            *st = Breaker::default();
            return;
        }
        st.consecutive_failures += 1;
        // A failure while open (the probe) reopens immediately; a closed
        // breaker opens once the consecutive-failure threshold is hit.
        if st.open_until.is_some() || st.consecutive_failures >= self.config.breaker_failures {
            st.opens = st.opens.saturating_add(1);
            let cooldown = self.config.breaker_cooldown.pause_before(st.opens as usize);
            st.open_until = Some(Instant::now() + cooldown);
            self.recorder.add("router.breaker_open", 1);
        }
    }
}

/// What a finished router run reports: the metrics snapshot plus a
/// human-readable status text (topology + final breaker states) for the
/// `--snapshot` file.
pub struct RouterReport {
    /// Final metrics snapshot.
    pub metrics: Snapshot,
    /// Rendered registry + breaker status.
    pub status: String,
}

/// Handle to a running router: its address, live metrics, and the two
/// ways a run ends (local [`RouterHandle::shutdown`], or
/// [`RouterHandle::join`] after a remote [`Request::Shutdown`]).
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's metrics recorder (live; snapshot any time).
    pub fn recorder(&self) -> &MetricsRecorder {
        &self.shared.recorder
    }

    /// Rendered topology + live breaker states.
    pub fn status(&self) -> String {
        status_text(&self.shared)
    }

    /// Stop accepting, then report. Queries already dispatched finish on
    /// their own threads (each bounded by socket timeouts).
    pub fn shutdown(mut self) -> RouterReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        self.join_inner()
    }

    /// Wait for a remote [`Request::Shutdown`] to end the run, then
    /// report.
    pub fn join(mut self) -> RouterReport {
        self.join_inner()
    }

    fn join_inner(&mut self) -> RouterReport {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        RouterReport {
            metrics: self.shared.recorder.snapshot(),
            status: status_text(&self.shared),
        }
    }
}

/// Bind `addr` and start routing queries across `registry`'s shards.
/// Returns once the listener is live.
pub fn start_router(
    registry: ShardRegistry,
    addr: &str,
    config: &RouterConfig,
) -> Result<RouterHandle, ServeError> {
    config.validate()?;
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let recorder = Arc::new(MetricsRecorder::new());
    recorder.add("router.started", 1);
    recorder.add("router.shards_configured", registry.len() as u64);
    let states = (0..registry.len())
        .map(|_| Mutex::new(Breaker::default()))
        .collect();
    let shared = Arc::new(RouterShared {
        registry,
        states,
        admission: AdmissionControl::new(config.quota),
        pool: Arc::new(ShardConnPool::new(
            config.pool_max_idle,
            config.pool_max_age,
            Arc::clone(&recorder),
        )),
        config: config.clone(),
        recorder,
        shutdown: AtomicBool::new(false),
        addr,
        inflight: AtomicUsize::new(0),
        live_conns: AtomicUsize::new(0),
        info: RwLock::new(None),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    Ok(RouterHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

/// Reply on `conn`, tolerating a peer that already hung up.
fn respond(conn: &mut TcpStream, recorder: &MetricsRecorder, resp: &Response) {
    if write_frame_versioned(conn, &resp.encode(), resp.wire_version()).is_err() {
        recorder.add("router.write_errors", 1);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    let recorder = &*shared.recorder;
    loop {
        let mut conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        recorder.add("router.connections", 1);
        // Connection cap: past it, answer Busy and close instead of
        // spawning another handler — a connection flood or slow-loris
        // swarm pins at most `max_conns` threads and FDs. (A connection
        // handed off to a dispatched gather stops counting here; that
        // phase is bounded separately by `max_inflight`.)
        let prev = shared.live_conns.fetch_add(1, Ordering::AcqRel);
        if prev >= shared.config.max_conns {
            shared.live_conns.fetch_sub(1, Ordering::AcqRel);
            recorder.add("router.conn_rejected", 1);
            let busy = Response::Busy;
            let _ = conn.set_write_timeout(Some(shared.config.io_timeout));
            let _ = write_frame_versioned(&mut conn, &busy.encode(), busy.wire_version());
            continue;
        }
        // Read on a handler thread under an idle deadline: a half-open
        // peer must never pin admission of other clients.
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_conn(&shared, conn)
            }));
            shared.live_conns.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

/// Serve one ingress connection: reap it if it idles before sending, read
/// one request, dispatch. The router stays one-request-per-connection on
/// its front door (its own clients are one-shot); keep-alive lives on the
/// router-to-shard pooled connections.
fn handle_conn(shared: &Arc<RouterShared>, mut conn: TcpStream) {
    let recorder = &*shared.recorder;
    if conn
        .set_write_timeout(Some(shared.config.io_timeout))
        .is_err()
        || conn
            .set_read_timeout(Some(shared.config.idle_timeout))
            .is_err()
    {
        return;
    }
    // Idle phase: a peer that connects and never sends is reaped.
    let mut first = [0u8; 1];
    match conn.peek(&mut first) {
        Ok(0) => return, // peer closed
        Ok(_) => {}
        Err(e) if is_timeout(&e) => {
            recorder.add("router.reaped_idle", 1);
            return;
        }
        Err(_) => return,
    }
    if conn
        .set_read_timeout(Some(shared.config.io_timeout))
        .is_err()
    {
        return;
    }
    let received = Instant::now();
    let decoded = read_frame_versioned(&mut conn)
        .and_then(|(version, body)| Ok((version, Request::decode_versioned(&body, version)?)));
    let (version, request) = match decoded {
        Ok(pair) => pair,
        Err(ServeError::Io(ref e)) if is_timeout(e) => {
            recorder.add("router.reaped_idle", 1);
            return;
        }
        Err(e) => {
            recorder.add("router.protocol_errors", 1);
            respond(&mut conn, recorder, &Response::Error(e.to_string()));
            return;
        }
    };
    let (client_id, request) = request.untag();
    match request {
        Request::Ping => respond(&mut conn, recorder, &Response::Pong),
        Request::Info => {
            let resp = router_info(shared);
            respond(&mut conn, recorder, &resp);
        }
        Request::Shutdown => {
            recorder.add("router.shutdown_requests", 1);
            respond(&mut conn, recorder, &Response::ShuttingDown);
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(shared.addr);
        }
        Request::Reload { .. } => respond(
            &mut conn,
            recorder,
            &Response::Error("the router holds no index; reload the shard servers directly".into()),
        ),
        Request::MapPartial { .. } => respond(
            &mut conn,
            recorder,
            &Response::Error(
                "the router serves merged answers; MapPartial is a shard-tier request".into(),
            ),
        ),
        Request::Map {
            segments,
            deadline_ms,
        } => route_map(
            shared,
            conn,
            client_id,
            version,
            segments,
            deadline_ms,
            received,
            false,
        ),
        Request::MapDegraded {
            segments,
            deadline_ms,
        } => route_map(
            shared,
            conn,
            client_id,
            version,
            segments,
            deadline_ms,
            received,
            true,
        ),
        // decode_versioned rejects nested envelopes; refuse one
        // defensively anyway rather than recurse.
        Request::Tagged { .. } => {
            recorder.add("router.protocol_errors", 1);
            respond(
                &mut conn,
                recorder,
                &Response::Error("nested tagged envelope".into()),
            );
        }
    }
}

/// Gate one mapping query through the router's overload defenses — the
/// router-wide in-flight cap, then the per-client quota — and dispatch it
/// if both admit. The in-flight cap runs first because it charges
/// nothing: a request it sheds never costs quota tokens, keeping the
/// invariant that rejected requests are never charged.
#[allow(clippy::too_many_arguments)]
fn route_map(
    shared: &Arc<RouterShared>,
    mut conn: TcpStream,
    client_id: Option<String>,
    version: ProtocolVersion,
    segments: Vec<QuerySegment>,
    deadline_ms: Option<u64>,
    received: Instant,
    allow_degraded: bool,
) {
    let recorder = &*shared.recorder;
    let lane = client_id.as_deref().unwrap_or("");
    let cost = (segments.len() as u64).max(1);
    let prev = shared.inflight.fetch_add(1, Ordering::AcqRel);
    if prev >= shared.config.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        recorder.add("router.inflight_rejected", 1);
        respond(&mut conn, recorder, &Response::Busy);
        return;
    }
    if let Err(retry_after) = shared.admission.try_admit(lane, cost) {
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
        recorder.add("router.throttled", 1);
        // Version negotiation: never answer a newer revision than the
        // request spoke — pre-v3 peers cannot decode Throttled.
        let resp = if version == ProtocolVersion::V3 {
            Response::Throttled {
                retry_after_ms: u64::try_from(retry_after.as_millis()).unwrap_or(u64::MAX),
            }
        } else {
            Response::Busy
        };
        respond(&mut conn, recorder, &resp);
        return;
    }
    dispatch(
        shared,
        conn,
        client_id,
        segments,
        deadline_ms,
        received,
        allow_degraded,
    );
}

/// Answer one mapping query on its own thread: the gather can spend a
/// hedge threshold + shard latency, and the handler must not keep its
/// ingress thread pinned meanwhile. Backpressure lives at the admission
/// gates above and the shard tier's bounded queues; the gather itself is
/// a thin fan-out. Releases the in-flight slot when the answer is
/// written.
fn dispatch(
    shared: &Arc<RouterShared>,
    mut conn: TcpStream,
    client_id: Option<String>,
    segments: Vec<QuerySegment>,
    deadline_ms: Option<u64>,
    received: Instant,
    allow_degraded: bool,
) {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        let resp = answer(
            &shared,
            client_id.as_deref(),
            &segments,
            deadline_ms,
            received,
            allow_degraded,
        );
        respond(&mut conn, &shared.recorder, &resp);
        let latency = u64::try_from(received.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared.recorder.span_ns("router/request", latency);
        shared.inflight.fetch_sub(1, Ordering::AcqRel);
    });
}

/// The router's `Info`: any healthy shard's info with the shard count
/// rewritten to the global slot count (all shards serve the same index
/// parameters — only slot ownership differs). Cached after first success.
fn router_info(shared: &Arc<RouterShared>) -> Response {
    if let Some(info) = shared.info.read().expect("info lock poisoned").clone() {
        return Response::Info(info);
    }
    for spec in shared.registry.shards() {
        let client = Client::new(spec.addr.clone()).with_timeout(shared.config.io_timeout);
        if let Ok(mut info) = client.info() {
            info.shards = shared.registry.n_slots();
            *shared.info.write().expect("info lock poisoned") = Some(info.clone());
            return Response::Info(info);
        }
    }
    Response::Error("no shard reachable to answer Info".into())
}

/// How one shard's share of a gather ended.
enum ShardOutcome {
    /// Validated partials, ready to merge.
    Partials(Vec<SegmentPartials>),
    /// The shard is missing from the merge (unreachable, invalid answer,
    /// busy, or breaker-skipped).
    Missing,
    /// The deadline budget ran out for this shard (it is not unhealthy —
    /// nobody is waiting anymore).
    Expired,
}

/// A completed scatter-gather: per-shard partials plus the gap list.
struct Gather {
    present: Vec<(usize, Vec<SegmentPartials>)>,
    /// Shard ids missing from the merge, ascending (registry indices).
    missing: Vec<u32>,
    any_expired: bool,
}

/// The min of the router's own budget and the client's request deadline.
fn effective_budget(router: Option<Duration>, client_ms: Option<u64>) -> Option<Duration> {
    let client = client_ms.map(Duration::from_millis);
    match (router, client) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

fn gather(
    shared: &Arc<RouterShared>,
    client_id: Option<&str>,
    segments: &[QuerySegment],
    deadline_ms: Option<u64>,
    received: Instant,
) -> Gather {
    let recorder = &*shared.recorder;
    recorder.add("router.queries", 1);
    recorder.observe("router.fanout", shared.registry.len() as u64);
    let _pass = Span::enter(recorder as &dyn Recorder, "router/gather");
    let budget = effective_budget(shared.config.deadline, deadline_ms);
    let n = shared.registry.len();
    let outcomes: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|shard_id| {
                scope.spawn(move || {
                    shard_outcome(shared, shard_id, client_id, segments, budget, received)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(ShardOutcome::Missing))
            .collect()
    });
    let mut g = Gather {
        present: Vec::new(),
        missing: Vec::new(),
        any_expired: false,
    };
    for (shard_id, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            ShardOutcome::Partials(p) => g.present.push((shard_id, p)),
            ShardOutcome::Missing => g.missing.push(shard_id as u32),
            ShardOutcome::Expired => {
                g.any_expired = true;
                g.missing.push(shard_id as u32);
            }
        }
    }
    g
}

/// One shard's share of a gather: breaker gate, fetch (with hedging),
/// validation, breaker report. A hard failure also evicts the shard's
/// pooled connections — a socket that just failed (or whose endpoint is
/// about to sit behind an open breaker) must not be reused by the next
/// query or the half-open probe.
fn shard_outcome(
    shared: &Arc<RouterShared>,
    shard_id: usize,
    client_id: Option<&str>,
    segments: &[QuerySegment],
    budget: Option<Duration>,
    received: Instant,
) -> ShardOutcome {
    let recorder = &*shared.recorder;
    // Remaining budget from here: the router's elapsed time is the
    // client's elapsed time, so shards only ever get what is left.
    let remaining = match budget {
        Some(b) => match b.checked_sub(received.elapsed()) {
            Some(r) if r > Duration::ZERO => Some(r),
            _ => return ShardOutcome::Expired,
        },
        None => None,
    };
    // The admission is an RAII reservation: if anything between here and
    // the breaker report unwinds or returns early, a held half-open probe
    // slot is released on drop instead of wedging the shard forever.
    let Some(admission) = shared.admit(shard_id) else {
        recorder.add("router.breaker_skips", 1);
        return ShardOutcome::Missing;
    };
    let spec = &shared.registry.shards()[shard_id];
    let evict = |reason: &str| {
        let _ = reason;
        shared.pool.evict_endpoint(&spec.addr);
        if let Some(replica) = &spec.replica {
            shared.pool.evict_endpoint(replica);
        }
    };
    match fetch_partials(shared, shard_id, client_id, segments, remaining) {
        Ok(partials) => {
            if validate_partials(segments, &partials).is_err() {
                // A shard answering mismatched echoes is unhealthy, and
                // its data must never alias into the merge.
                recorder.add("router.invalid_partials", 1);
                recorder.add_dyn(format!("router.shard.{shard_id}.failures"), 1);
                evict("invalid partials");
                admission.report(false);
                ShardOutcome::Missing
            } else {
                recorder.add_dyn(format!("router.shard.{shard_id}.ok"), 1);
                admission.report(true);
                ShardOutcome::Partials(partials)
            }
        }
        // A shard shedding on deadline is healthy — the budget died, not
        // the shard. Same for backpressure: `Busy` (and its per-client
        // sibling `Throttled`) is load, not illness.
        Err(ServeError::Expired) => {
            admission.report(true);
            ShardOutcome::Expired
        }
        Err(ServeError::Busy) => {
            recorder.add("router.shard_busy", 1);
            admission.report(true);
            ShardOutcome::Missing
        }
        Err(ServeError::Throttled { .. }) => {
            recorder.add("router.shard_throttled", 1);
            admission.report(true);
            ShardOutcome::Missing
        }
        Err(_) => {
            recorder.add_dyn(format!("router.shard.{shard_id}.failures"), 1);
            evict("fetch failure");
            admission.report(false);
            ShardOutcome::Missing
        }
    }
}

/// Fetch one shard's partials through the connection pool, hedging to the
/// replica (or re-dispatching to the primary) if the first attempt goes
/// silent past the straggler threshold. First answer wins; a losing
/// attempt's result is discarded (its connection still lands in the pool
/// for the next query). The request rides a v3 tagged envelope — the
/// originating client's id when there is one, the router's own otherwise
/// — which is what keeps the pooled connection alive shard-side.
fn fetch_partials(
    shared: &Arc<RouterShared>,
    shard_id: usize,
    client_id: Option<&str>,
    segments: &[QuerySegment],
    budget: Option<Duration>,
) -> Result<Vec<SegmentPartials>, ServeError> {
    let spec = &shared.registry.shards()[shard_id];
    let deadline_ms = budget.map(|d| {
        let ms = u64::try_from(d.as_millis()).unwrap_or(u64::MAX - 1);
        ms.max(1)
    });
    let tag = match client_id {
        Some(id) if !id.is_empty() => id.to_string(),
        _ => ROUTER_CLIENT_ID.to_string(),
    };
    let req = Request::Tagged {
        client_id: tag,
        inner: Box::new(Request::MapPartial {
            segments: segments.to_vec(),
            deadline_ms,
        }),
    };
    let (tx, rx) = mpsc::channel::<(bool, Result<Vec<SegmentPartials>, ServeError>)>();
    let io_timeout = shared.config.io_timeout;
    let spawn_attempt = |addr: String, hedged: bool| {
        let tx = tx.clone();
        let req = req.clone();
        let pool = Arc::clone(&shared.pool);
        std::thread::spawn(move || {
            let result = pool
                .exchange(&addr, &req, io_timeout)
                .and_then(|resp| match resp {
                    Response::Partials(partials) => Ok(partials),
                    other => Err(unexpected("Partials", &other)),
                });
            let _ = tx.send((hedged, result));
        });
    };
    spawn_attempt(spec.addr.clone(), false);
    // Hard stop for the whole fetch: the budget if there is one, else a
    // generous multiple of the socket timeout (each attempt thread is
    // itself bounded by connect/read/write timeouts).
    let hard = budget.unwrap_or_else(|| io_timeout.saturating_mul(3));
    let started = Instant::now();
    // Wait for the primary up to the straggler threshold, then hedge.
    let mut first = None;
    match shared.config.hedge_after {
        Some(hedge_after) if hedge_after < hard => match rx.recv_timeout(hedge_after) {
            Ok(outcome) => first = Some(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                shared.recorder.add("router.hedges", 1);
                let target = spec.replica.clone().unwrap_or_else(|| spec.addr.clone());
                spawn_attempt(target, true);
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {}
        },
        _ => {}
    }
    // From here only the attempt threads hold senders: the loop ends on
    // the first success, when every attempt has failed (disconnect), or
    // at the hard stop.
    drop(tx);
    let mut last_err = None;
    loop {
        let outcome = match first.take() {
            Some(outcome) => outcome,
            None => {
                let Some(left) = hard.checked_sub(started.elapsed()) else {
                    break;
                };
                match rx.recv_timeout(left) {
                    Ok(outcome) => outcome,
                    Err(_) => break,
                }
            }
        };
        match outcome {
            (hedged, Ok(partials)) => {
                if hedged {
                    shared.recorder.add("router.hedge_wins", 1);
                }
                return Ok(partials);
            }
            (_, Err(e)) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("shard {shard_id} did not answer within the gather bound"),
        ))
    }))
}

/// Build the response for one query batch from a completed gather.
fn answer(
    shared: &Arc<RouterShared>,
    client_id: Option<&str>,
    segments: &[QuerySegment],
    deadline_ms: Option<u64>,
    received: Instant,
    allow_degraded: bool,
) -> Response {
    let recorder = &*shared.recorder;
    let g = gather(shared, client_id, segments, deadline_ms, received);
    let merged = |present: &[(usize, Vec<SegmentPartials>)]| {
        let lists: Vec<&Vec<SegmentPartials>> = present.iter().map(|(_, p)| p).collect();
        merge_partials(segments, &lists)
    };
    if g.missing.is_empty() {
        return match merged(&g.present) {
            Ok(mappings) => {
                recorder.add("router.full_answers", 1);
                Response::Mappings(mappings)
            }
            Err(e) => Response::Error(e.to_string()),
        };
    }
    if !allow_degraded {
        return if g.any_expired {
            recorder.add("router.expired", 1);
            Response::Expired
        } else {
            Response::Error(format!(
                "shards {:?} unavailable; a strict Map fails whole — retry, or ask for a \
                 degraded answer (MapDegraded / jem query --allow-degraded)",
                g.missing
            ))
        };
    }
    if g.present.is_empty() {
        return if g.any_expired {
            recorder.add("router.expired", 1);
            Response::Expired
        } else {
            Response::Error(format!("all shards unavailable ({:?})", g.missing))
        };
    }
    match merged(&g.present) {
        Ok(mappings) => {
            recorder.add("router.degraded", 1);
            Response::Degraded {
                mappings,
                missing: g.missing,
            }
        }
        Err(e) => Response::Error(e.to_string()),
    }
}

/// Check that `partials` is a plausible shard answer for `segments`: one
/// entry per segment, in order, echoing each segment's identity. A gather
/// merges answers from independent processes — this is what stops a
/// shard's (or a fault injector's) mismatched answer from aliasing into
/// another query's merge.
pub fn validate_partials(
    segments: &[QuerySegment],
    partials: &[SegmentPartials],
) -> Result<(), ServeError> {
    if partials.len() != segments.len() {
        return Err(ServeError::protocol(format!(
            "shard answered {} partials for {} segments",
            partials.len(),
            segments.len()
        )));
    }
    for (seg, p) in segments.iter().zip(partials) {
        if p.read_idx != seg.read_idx || p.end != seg.end {
            return Err(ServeError::protocol(format!(
                "shard partial echoes read {} {:?} for requested read {} {:?}",
                p.read_idx, p.end, seg.read_idx, seg.end
            )));
        }
    }
    Ok(())
}

/// Merge per-shard [`SegmentPartials`] into final mappings, reproducing
/// the lazy hit counter's argmax exactly.
///
/// For each segment and trial, the shards' deduplicated subject sets are
/// unioned (set union is associative, commutative, and idempotent — shard
/// order and shard count cannot change the result); a subject's hit count
/// is the number of trials whose union contains it; the winner is the
/// highest count, ties to the smallest subject id — precisely the rule
/// `LazyHitCounter::record` applies, so a full gather is byte-identical
/// to the single-process answer. Output is sorted in [`Mapping`]'s total
/// order. Every shard's list must pass [`validate_partials`].
pub fn merge_partials<L: AsRef<[SegmentPartials]>>(
    segments: &[QuerySegment],
    per_shard: &[L],
) -> Result<Vec<Mapping>, ServeError> {
    for shard in per_shard {
        validate_partials(segments, shard.as_ref())?;
    }
    let mut mappings = Vec::new();
    let mut union: Vec<SubjectId> = Vec::new();
    let mut counts: BTreeMap<SubjectId, u32> = BTreeMap::new();
    for (i, seg) in segments.iter().enumerate() {
        counts.clear();
        let trials = per_shard
            .iter()
            .map(|s| s.as_ref()[i].trials.len())
            .max()
            .unwrap_or(0);
        for t in 0..trials {
            union.clear();
            for shard in per_shard {
                if let Some(set) = shard.as_ref()[i].trials.get(t) {
                    union.extend_from_slice(set);
                }
            }
            union.sort_unstable();
            union.dedup();
            for &s in &union {
                *counts.entry(s).or_insert(0) += 1;
            }
        }
        // The lazy counter's argmax: a strictly higher count wins; an
        // equal count keeps the earlier (smaller) subject id. Ascending
        // iteration makes "keep on ties" exactly that rule.
        let mut best: Option<(SubjectId, u32)> = None;
        for (&subject, &count) in counts.iter() {
            match best {
                Some((_, best_count)) if count <= best_count => {}
                _ => best = Some((subject, count)),
            }
        }
        if let Some((subject, hits)) = best {
            mappings.push(Mapping {
                read_idx: seg.read_idx,
                end: seg.end,
                subject,
                hits,
            });
        }
    }
    mappings.sort_unstable();
    Ok(mappings)
}

/// Render the topology and live breaker states (the `--snapshot` text).
fn status_text(shared: &RouterShared) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# jem-router status");
    let _ = writeln!(out, "epoch\t{}", shared.registry.epoch());
    let _ = writeln!(out, "slots\t{}", shared.registry.n_slots());
    let _ = writeln!(out, "topology\t{}", shared.registry);
    let now = Instant::now();
    for (i, spec) in shared.registry.shards().iter().enumerate() {
        let st = shared.states[i].lock().expect("breaker lock poisoned");
        let phase = match st.open_until {
            Some(until) if now < until => "open",
            Some(_) => "half-open",
            None => "closed",
        };
        let _ = writeln!(
            out,
            "shard\t{i}\t{}-{}\t{}\treplica={}\tbreaker={phase}\tfailures={}\topens={}\tpool_idle={}",
            spec.slots.start,
            spec.slots.end,
            spec.addr,
            spec.replica.as_deref().unwrap_or("-"),
            st.consecutive_failures,
            st.opens,
            shared.pool.idle(&spec.addr)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_core::ReadEnd;

    fn seg(read_idx: u32, end: ReadEnd) -> QuerySegment {
        QuerySegment {
            read_idx,
            end,
            seq: Vec::new(),
        }
    }

    fn partial(read_idx: u32, end: ReadEnd, trials: Vec<Vec<SubjectId>>) -> SegmentPartials {
        SegmentPartials {
            read_idx,
            end,
            trials,
        }
    }

    /// A standalone `RouterShared` (no listener) for breaker unit tests.
    fn test_shared(config: RouterConfig) -> RouterShared {
        let recorder = Arc::new(MetricsRecorder::new());
        RouterShared {
            registry: ShardRegistry::parse("0-1@127.0.0.1:1").unwrap(),
            states: vec![Mutex::new(Breaker::default())],
            admission: AdmissionControl::new(config.quota),
            pool: Arc::new(ShardConnPool::new(
                config.pool_max_idle,
                config.pool_max_age,
                Arc::clone(&recorder),
            )),
            config,
            recorder,
            shutdown: AtomicBool::new(false),
            addr: "127.0.0.1:0".parse().unwrap(),
            inflight: AtomicUsize::new(0),
            live_conns: AtomicUsize::new(0),
            info: RwLock::new(None),
        }
    }

    #[test]
    fn merge_reproduces_the_lazy_counter_tiebreak() {
        let segments = vec![seg(0, ReadEnd::Prefix)];
        // Subject 9 collides in trials {0,1}; subject 2 in trials {1,2}.
        // Equal counts — the smaller id must win, exactly like the lazy
        // counter's "equal count keeps the smaller subject" rule.
        let shards = vec![vec![partial(
            0,
            ReadEnd::Prefix,
            vec![vec![9], vec![2, 9], vec![2]],
        )]];
        let merged = merge_partials(&segments, &shards).unwrap();
        assert_eq!(
            merged,
            vec![Mapping {
                read_idx: 0,
                end: ReadEnd::Prefix,
                subject: 2,
                hits: 2
            }]
        );
        // A strictly higher count beats a smaller id.
        let shards = vec![vec![partial(
            0,
            ReadEnd::Prefix,
            vec![vec![0, 7], vec![7], vec![7]],
        )]];
        let merged = merge_partials(&segments, &shards).unwrap();
        assert_eq!(merged[0].subject, 7);
        assert_eq!(merged[0].hits, 3);
    }

    #[test]
    fn merge_unions_across_shards_without_double_counting() {
        let segments = vec![seg(3, ReadEnd::Suffix)];
        // Subject 5 collides with *different codes of the same trial* on
        // two different shards: the union must count that trial once.
        let a = vec![partial(3, ReadEnd::Suffix, vec![vec![5], vec![]])];
        let b = vec![partial(3, ReadEnd::Suffix, vec![vec![5], vec![5]])];
        let merged = merge_partials(&segments, &[a.clone(), b.clone()]).unwrap();
        assert_eq!(merged[0].hits, 2, "trial 0 must count once, not twice");
        // Order independence: any shard permutation merges identically.
        let swapped = merge_partials(&segments, &[b, a]).unwrap();
        assert_eq!(merged, swapped);
    }

    #[test]
    fn merge_with_no_collisions_maps_nothing() {
        let segments = vec![seg(0, ReadEnd::Prefix), seg(0, ReadEnd::Suffix)];
        let shards = vec![vec![
            partial(0, ReadEnd::Prefix, vec![Vec::new(); 4]),
            partial(0, ReadEnd::Suffix, vec![Vec::new(); 4]),
        ]];
        assert!(merge_partials(&segments, &shards).unwrap().is_empty());
        let none: Vec<Vec<SegmentPartials>> = Vec::new();
        assert!(merge_partials(&segments, &none).unwrap().is_empty());
    }

    #[test]
    fn mismatched_echoes_refuse_to_merge() {
        let segments = vec![seg(1, ReadEnd::Prefix)];
        // Wrong read index.
        let wrong_read = vec![partial(2, ReadEnd::Prefix, vec![vec![1]])];
        assert!(merge_partials(&segments, &[wrong_read]).is_err());
        // Wrong end.
        let wrong_end = vec![partial(1, ReadEnd::Suffix, vec![vec![1]])];
        assert!(merge_partials(&segments, &[wrong_end]).is_err());
        // Wrong count.
        let wrong_len: Vec<SegmentPartials> = Vec::new();
        assert!(merge_partials(&segments, &[wrong_len]).is_err());
    }

    #[test]
    fn effective_budget_takes_the_min() {
        let s = Duration::from_secs(1);
        assert_eq!(effective_budget(None, None), None);
        assert_eq!(effective_budget(Some(s), None), Some(s));
        assert_eq!(effective_budget(None, Some(500)), Some(s / 2));
        assert_eq!(effective_budget(Some(s), Some(500)), Some(s / 2));
        assert_eq!(effective_budget(Some(s / 4), Some(500)), Some(s / 4));
    }

    #[test]
    fn breaker_opens_after_threshold_and_probe_decides() {
        let config = RouterConfig {
            breaker_failures: 2,
            breaker_cooldown: RetryPolicy::new(4, Duration::from_millis(1))
                .with_cap(Duration::from_millis(2)),
            ..RouterConfig::default()
        };
        let shared = test_shared(config);
        shared.admit(0).expect("fresh breaker admits").report(false);
        shared
            .admit(0)
            .expect("one failure is below the threshold")
            .report(false);
        assert!(
            shared.admit(0).is_none(),
            "second failure must open the breaker"
        );
        std::thread::sleep(Duration::from_millis(10));
        shared
            .admit(0)
            .expect("cooldown elapsed: half-open probe")
            .report(false);
        assert!(
            shared.admit(0).is_none(),
            "failed probe must reopen immediately"
        );
        std::thread::sleep(Duration::from_millis(10));
        shared.admit(0).expect("second cooldown probe").report(true);
        assert!(shared.admit(0).is_some(), "success closes the breaker");
        let snap = shared.recorder.snapshot();
        assert_eq!(snap.counter("router.breaker_open"), 2);
        assert_eq!(snap.counter("router.breaker_close"), 1);
    }

    #[test]
    fn half_open_race_admits_exactly_one_probe() {
        let config = RouterConfig {
            breaker_failures: 1,
            breaker_cooldown: RetryPolicy::new(4, Duration::from_millis(1))
                .with_cap(Duration::from_millis(2)),
            ..RouterConfig::default()
        };
        let shared = test_shared(config);
        shared.report(0, false); // threshold 1: opens immediately
        std::thread::sleep(Duration::from_millis(10)); // past the cooldown
                                                       // Many fetches race the expired cooldown: the probe slot is
                                                       // reserved under the breaker lock, so exactly one may pass.
                                                       // The granted admissions are held (not dropped) until counted —
                                                       // dropping one unreported would hand the slot to the next racer.
        let admitted: Vec<Option<BreakerAdmit<'_>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8).map(|_| scope.spawn(|| shared.admit(0))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut granted: Vec<BreakerAdmit<'_>> = admitted.into_iter().flatten().collect();
        assert_eq!(
            granted.len(),
            1,
            "exactly one racer may own the half-open probe"
        );
        // The failed probe reopens the breaker — one reopen, not one per
        // refused racer — and refuses admission again.
        granted.pop().expect("counted above").report(false);
        assert!(
            shared.admit(0).is_none(),
            "failed probe must reopen the breaker"
        );
        let snap = shared.recorder.snapshot();
        assert_eq!(
            snap.counter("router.breaker_open"),
            2,
            "initial open + probe reopen, no double-counting"
        );
        assert_eq!(snap.counter("router.breaker_close"), 0);
        // And a successful probe after the next cooldown closes it.
        std::thread::sleep(Duration::from_millis(10));
        shared.admit(0).expect("next cooldown probe").report(true);
        assert!(shared.admit(0).is_some());
        assert_eq!(
            shared.recorder.snapshot().counter("router.breaker_close"),
            1
        );
    }

    /// The fetch path between `admit` and `report` can unwind (a panic in
    /// validation, an early return added later): a half-open admission
    /// dropped without a report must release the probe slot, not wedge
    /// the shard out of rotation forever.
    #[test]
    fn unreported_probe_admission_releases_the_slot_on_drop() {
        let config = RouterConfig {
            breaker_failures: 1,
            breaker_cooldown: RetryPolicy::new(4, Duration::from_millis(1))
                .with_cap(Duration::from_millis(2)),
            ..RouterConfig::default()
        };
        let shared = test_shared(config);
        shared.admit(0).expect("fresh breaker").report(false); // opens
        std::thread::sleep(Duration::from_millis(10));
        let probe = shared.admit(0).expect("cooldown elapsed: probe");
        // While the probe is held, racers are refused...
        assert!(shared.admit(0).is_none(), "held probe refuses racers");
        // ...and dropping it unreported frees the slot for the next probe
        // instead of leaving `probing` stuck true.
        drop(probe);
        shared
            .admit(0)
            .expect("dropped probe must release the half-open slot")
            .report(true);
        assert!(shared.admit(0).is_some(), "successful probe closed it");
    }

    /// A stub shard that accepts `conns` connections and answers `Pong`
    /// to every frame on each until the peer closes. Returns how many
    /// requests each connection served.
    fn pong_stub(conns: usize) -> (String, std::thread::JoinHandle<Vec<usize>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut served = Vec::new();
            for _ in 0..conns {
                let Ok((mut conn, _)) = listener.accept() else {
                    break;
                };
                let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
                let mut n = 0;
                while read_frame_versioned(&mut conn).is_ok() {
                    let pong = Response::Pong;
                    if write_frame_versioned(&mut conn, &pong.encode(), pong.wire_version())
                        .is_err()
                    {
                        break;
                    }
                    n += 1;
                }
                served.push(n);
            }
            served
        });
        (addr, handle)
    }

    fn tagged_ping() -> Request {
        Request::Tagged {
            client_id: "pool-test".into(),
            inner: Box::new(Request::Ping),
        }
    }

    #[test]
    fn pooled_exchange_reuses_one_connection() {
        let (addr, stub) = pong_stub(1);
        let recorder = Arc::new(MetricsRecorder::new());
        let pool = ShardConnPool::new(4, Duration::from_secs(5), Arc::clone(&recorder));
        let req = tagged_ping();
        for _ in 0..3 {
            let resp = pool.exchange(&addr, &req, Duration::from_secs(5)).unwrap();
            assert_eq!(resp, Response::Pong);
        }
        assert_eq!(pool.idle(&addr), 1);
        drop(pool); // closes the idle socket so the stub's read loop ends
        assert_eq!(
            stub.join().unwrap(),
            vec![3],
            "all three exchanges must ride one connection"
        );
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("router.pool_miss"), 1);
        assert_eq!(snap.counter("router.pool_hit"), 2);
    }

    #[test]
    fn exchange_recovers_after_the_shard_restarts() {
        // The stub answers one request per connection, then closes it —
        // the shape of a shard that restarted between queries.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stub = std::thread::spawn(move || {
            for _ in 0..2 {
                let Ok((mut conn, _)) = listener.accept() else {
                    return;
                };
                let _ = conn.set_read_timeout(Some(Duration::from_secs(5)));
                if read_frame_versioned(&mut conn).is_ok() {
                    let pong = Response::Pong;
                    let _ = write_frame_versioned(&mut conn, &pong.encode(), pong.wire_version());
                }
            }
        });
        let recorder = Arc::new(MetricsRecorder::new());
        let pool = ShardConnPool::new(4, Duration::from_secs(5), Arc::clone(&recorder));
        let req = tagged_ping();
        assert_eq!(
            pool.exchange(&addr, &req, Duration::from_secs(5)).unwrap(),
            Response::Pong
        );
        // Give the stub's close time to reach our pooled socket, then
        // exchange again: whether the health peek catches the dead socket
        // or the retry-once path does, the answer must come back whole.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            pool.exchange(&addr, &req, Duration::from_secs(5)).unwrap(),
            Response::Pong
        );
        stub.join().unwrap();
        let snap = recorder.snapshot();
        assert!(
            snap.counter("router.pool_evict") >= 1,
            "the dead pooled socket must be evicted"
        );
    }

    #[test]
    fn pool_evicts_stale_and_bounds_idle_conns() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Keep the server halves alive so health peeks see open sockets.
        let mut server_halves = Vec::new();
        let mut client_half = |pool: &ShardConnPool| {
            let c = TcpStream::connect(&addr).unwrap();
            server_halves.push(listener.accept().unwrap().0);
            pool.checkin(&addr, c);
        };
        let recorder = Arc::new(MetricsRecorder::new());
        // Age bound: a connection past max_age is discarded at checkout.
        let pool = ShardConnPool::new(4, Duration::from_millis(1), Arc::clone(&recorder));
        client_half(&pool);
        std::thread::sleep(Duration::from_millis(10));
        assert!(pool.checkout(&addr).is_none(), "stale conn must not reuse");
        assert_eq!(recorder.snapshot().counter("router.pool_evict"), 1);
        // Idle bound: the set never exceeds max_idle.
        let pool = ShardConnPool::new(2, Duration::from_secs(5), Arc::clone(&recorder));
        for _ in 0..4 {
            client_half(&pool);
        }
        assert_eq!(pool.idle(&addr), 2);
        // Endpoint eviction empties the set.
        pool.evict_endpoint(&addr);
        assert_eq!(pool.idle(&addr), 0);
    }

    #[test]
    fn pool_with_zero_idle_never_retains_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let recorder = Arc::new(MetricsRecorder::new());
        let pool = ShardConnPool::new(0, Duration::from_secs(5), recorder);
        let c = TcpStream::connect(&addr).unwrap();
        let _server_half = listener.accept().unwrap();
        pool.checkin(&addr, c);
        assert_eq!(pool.idle(&addr), 0, "max_idle 0 disables pooling");
    }
}
