//! Blocking client for the `jem-serve` protocol.
//!
//! One connection per request: the protocol is strictly
//! request/response, so a fresh `TcpStream` per call keeps the client
//! trivially correct under concurrency (no framing state to desynchronize)
//! at the cost of one TCP handshake per request — negligible next to an
//! index pass. `jem query` and the equivalence suite are built on this.

use crate::protocol::{read_frame, write_frame, Request, Response, ServerInfo};
use crate::ServeError;
use jem_core::{Mapping, QuerySegment};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking `jem-serve` client bound to one server address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// Client for the server at `addr` (e.g. `"127.0.0.1:7878"`), with a
    /// default 30-second I/O timeout.
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Same client with a different connect/read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One request/response exchange on a fresh connection.
    fn exchange(&self, req: &Request) -> Result<Response, ServeError> {
        let addr = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            ServeError::protocol(format!("address {:?} resolves to nothing", self.addr))
        })?;
        let mut conn = TcpStream::connect_timeout(&addr, self.timeout)?;
        conn.set_read_timeout(Some(self.timeout))?;
        conn.set_write_timeout(Some(self.timeout))?;
        write_frame(&mut conn, &req.encode())?;
        let body = read_frame(&mut conn)?;
        Response::decode(&body)
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ServeError> {
        match self.exchange(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// The served index's parameters, scheme, and subject names.
    pub fn info(&self) -> Result<ServerInfo, ServeError> {
        match self.exchange(&Request::Info)? {
            Response::Info(info) => Ok(info),
            other => Err(unexpected("Info", &other)),
        }
    }

    /// Map a batch of segments. A full server queue surfaces as
    /// [`ServeError::Busy`] — callers decide their own retry policy (or
    /// use [`Client::map_segments_retry`]).
    pub fn map_segments(&self, segments: &[QuerySegment]) -> Result<Vec<Mapping>, ServeError> {
        let req = Request::Map {
            segments: segments.to_vec(),
        };
        match self.exchange(&req)? {
            Response::Mappings(mappings) => Ok(mappings),
            other => Err(unexpected("Mappings", &other)),
        }
    }

    /// [`Client::map_segments`] with bounded linear-backoff retries on
    /// [`ServeError::Busy`]: attempt `i` sleeps `i × backoff` first. Any
    /// other error is returned immediately.
    pub fn map_segments_retry(
        &self,
        segments: &[QuerySegment],
        attempts: usize,
        backoff: Duration,
    ) -> Result<Vec<Mapping>, ServeError> {
        let attempts = attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff * attempt as u32);
            }
            match self.map_segments(segments) {
                Err(ServeError::Busy) if attempt + 1 < attempts => continue,
                other => return other,
            }
        }
        Err(ServeError::Busy)
    }

    /// Ask the server to shut down gracefully (drain queued work, flush
    /// metrics, exit). Returns once the server acknowledges.
    pub fn shutdown_server(&self) -> Result<(), ServeError> {
        match self.exchange(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

/// Map an unexpected response onto the matching error.
fn unexpected(wanted: &str, got: &Response) -> ServeError {
    match got {
        Response::Busy => ServeError::Busy,
        Response::ShuttingDown => ServeError::ShuttingDown,
        Response::Error(msg) => ServeError::Remote(msg.clone()),
        other => ServeError::protocol(format!("expected {wanted}, got {other:?}")),
    }
}
