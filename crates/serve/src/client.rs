//! Blocking client for the `jem-serve` protocol.
//!
//! One connection per request: the protocol is strictly
//! request/response, so a fresh `TcpStream` per call keeps the client
//! trivially correct under concurrency (no framing state to desynchronize)
//! at the cost of one TCP handshake per request — negligible next to an
//! index pass. `jem query` and the equivalence suite are built on this.
//!
//! The client speaks the oldest protocol revision each request fits in
//! ([`Request::wire_version`]): a deadline-free client is byte-identical
//! on the wire to a pre-`JEMSRV2` build, so it can talk to old servers.
//! A client with an identity ([`Client::with_client_id`]) wraps every
//! request in a `JEMSRV3` [`Request::Tagged`] envelope, which keys the
//! server's per-client admission quota and fair-queue lane — and makes
//! [`ServeError::Throttled`] (with its server-computed `retry_after`
//! hint, honored by [`RetryPolicy`] retries) possible in return.

use crate::protocol::{
    fnv1a64, read_frame_versioned, write_frame_versioned, Request, Response, SegmentPartials,
    ServerInfo,
};
use crate::ServeError;
use jem_core::{Mapping, QuerySegment};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking `jem-serve` client bound to one server address.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
    timeout: Duration,
    deadline: Option<Duration>,
    client_id: Option<String>,
}

impl Client {
    /// Client for the server at `addr` (e.g. `"127.0.0.1:7878"`), with a
    /// default 30-second I/O timeout, no request deadline, and no client
    /// identity (requests ride the server's anonymous quota lane).
    pub fn new(addr: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
            deadline: None,
            client_id: None,
        }
    }

    /// Same client with a different connect/read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Same client with a per-request deadline budget, measured by the
    /// server from admission: a `Map` request still queued when the budget
    /// runs out is shed with [`ServeError::Expired`] instead of burning a
    /// worker pass on an answer nobody is waiting for. Sending a deadline
    /// upgrades the request frame to `JEMSRV2`; deadline-free requests
    /// stay on `JEMSRV1` for old servers. Millisecond resolution;
    /// sub-millisecond budgets round up to 1 ms (0 would mean "no
    /// deadline" is the only sane reading, so it is rejected as such).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Same client with no request deadline (undoes
    /// [`Client::with_deadline`]).
    pub fn without_deadline(mut self) -> Self {
        self.deadline = None;
        self
    }

    /// Same client carrying a caller-chosen identity: every request is
    /// wrapped in a `JEMSRV3` [`Request::Tagged`] envelope, keying the
    /// server's per-client admission quota and fair-queue lane. An empty
    /// id clears the identity (anonymous again). Identified clients can
    /// be answered [`ServeError::Throttled`] with a typed `retry_after`
    /// hint where anonymous over-quota clients just see `Busy`.
    pub fn with_client_id(mut self, id: impl Into<String>) -> Self {
        let id = id.into();
        self.client_id = if id.is_empty() { None } else { Some(id) };
        self
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One request/response exchange, transparently absorbing a single
    /// mid-request connection loss for idempotent requests: a server
    /// worker that died (or an LB that culled the connection) between our
    /// write and its reply surfaces as `ConnectionReset`/`BrokenPipe`/
    /// `UnexpectedEof`, and re-asking an idempotent question on a fresh
    /// connection is always safe. Non-idempotent requests (`Shutdown`,
    /// `Reload`) surface the error — re-sending those could act twice.
    fn exchange(&self, req: &Request) -> Result<Response, ServeError> {
        match self.exchange_once(req) {
            Err(ServeError::Io(ref e)) if is_idempotent(req) && is_connection_loss(e) => {
                self.exchange_once(req)
            }
            other => other,
        }
    }

    /// One request/response exchange on a fresh connection, framed in the
    /// oldest revision the request fits in — unless this client carries an
    /// identity, which upgrades the frame to a `JEMSRV3` tagged envelope.
    fn exchange_once(&self, req: &Request) -> Result<Response, ServeError> {
        let addr = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            ServeError::protocol(format!("address {:?} resolves to nothing", self.addr))
        })?;
        let tagged;
        let req = match &self.client_id {
            Some(id) => {
                tagged = Request::Tagged {
                    client_id: id.clone(),
                    inner: Box::new(req.clone()),
                };
                &tagged
            }
            None => req,
        };
        let mut conn = TcpStream::connect_timeout(&addr, self.timeout)?;
        conn.set_read_timeout(Some(self.timeout))?;
        conn.set_write_timeout(Some(self.timeout))?;
        write_frame_versioned(&mut conn, &req.encode(), req.wire_version())?;
        let (_, body) = read_frame_versioned(&mut conn)?;
        Response::decode(&body)
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), ServeError> {
        match self.exchange(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// The served index's parameters, scheme, and subject names (as of the
    /// server's current reload epoch).
    pub fn info(&self) -> Result<ServerInfo, ServeError> {
        match self.exchange(&Request::Info)? {
            Response::Info(info) => Ok(info),
            other => Err(unexpected("Info", &other)),
        }
    }

    /// The deadline budget in wire milliseconds, if one is set.
    fn deadline_ms(&self) -> Option<u64> {
        self.deadline.map(|d| {
            let ms = u64::try_from(d.as_millis()).unwrap_or(u64::MAX - 1);
            ms.max(1)
        })
    }

    /// Map a batch of segments. A full server queue surfaces as
    /// [`ServeError::Busy`], an expired deadline as
    /// [`ServeError::Expired`] — callers decide their own retry policy (or
    /// use [`Client::map_segments_retry`]).
    pub fn map_segments(&self, segments: &[QuerySegment]) -> Result<Vec<Mapping>, ServeError> {
        let req = Request::Map {
            segments: segments.to_vec(),
            deadline_ms: self.deadline_ms(),
        };
        match self.exchange(&req)? {
            Response::Mappings(mappings) => Ok(mappings),
            other => Err(unexpected("Mappings", &other)),
        }
    }

    /// [`Client::map_segments`] with retries on [`ServeError::Busy`] under
    /// an explicit [`RetryPolicy`]. Any other error returns immediately —
    /// in particular [`ServeError::Expired`] is not retried: resending the
    /// same deadline would just be shed again.
    pub fn map_segments_with_policy(
        &self,
        segments: &[QuerySegment],
        policy: &RetryPolicy,
    ) -> Result<Vec<Mapping>, ServeError> {
        self.with_busy_retry(policy, || self.map_segments(segments))
    }

    /// Run `call` with retries on [`ServeError::Busy`] and
    /// [`ServeError::Throttled`] under `policy`. Any other outcome
    /// (success or a different error) returns immediately. A throttled
    /// rejection carries the server's own `retry_after` hint, so the pause
    /// before that retry is at least the hint — sleeping less would just
    /// be rejected again by the same dry token bucket. On exhaustion the
    /// *last* typed rejection surfaces, so a caller over quota sees
    /// `Throttled` (with the hint), not a generic `Busy`.
    fn with_busy_retry<T>(
        &self,
        policy: &RetryPolicy,
        call: impl Fn() -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        let attempts = policy.attempts.max(1);
        let mut slept = Duration::ZERO;
        let mut last = ServeError::Busy;
        for attempt in 0..attempts {
            if attempt > 0 {
                let mut pause = policy.pause_before(attempt);
                if let ServeError::Throttled { retry_after } = &last {
                    pause = pause.max(*retry_after);
                }
                if slept + pause > policy.budget {
                    // Budget exhausted: stop retrying rather than sleep
                    // past what the caller was willing to wait.
                    return Err(last);
                }
                slept += pause;
                std::thread::sleep(pause);
            }
            match call() {
                Err(e @ (ServeError::Busy | ServeError::Throttled { .. }))
                    if attempt + 1 < attempts =>
                {
                    last = e;
                }
                other => return other,
            }
        }
        Err(last)
    }

    /// [`Client::map_segments`] with bounded retries on
    /// [`ServeError::Busy`]. `attempts` and `backoff` parameterize a
    /// [`RetryPolicy`] (capped exponential backoff with deterministic
    /// jitter and a total sleep budget); the signature is unchanged from
    /// the original linear-backoff version.
    pub fn map_segments_retry(
        &self,
        segments: &[QuerySegment],
        attempts: usize,
        backoff: Duration,
    ) -> Result<Vec<Mapping>, ServeError> {
        let policy = RetryPolicy::new(attempts, backoff)
            // Seed the jitter from the target address: deterministic for a
            // given server (reproducible runs, no `SystemTime`), different
            // across servers so co-hosted clients don't sync up.
            .with_jitter_seed(fnv1a64(self.addr.as_bytes()));
        self.map_segments_with_policy(segments, &policy)
    }

    /// Ask a shard server for the per-trial collision *sets* of each
    /// segment against its owned slot range ([`Request::MapPartial`]) —
    /// the gather half of the router's scatter-gather. Partials from
    /// disjoint shard processes union into exactly the single-process
    /// answer (see [`SegmentPartials`]).
    pub fn map_segments_partial(
        &self,
        segments: &[QuerySegment],
    ) -> Result<Vec<SegmentPartials>, ServeError> {
        let req = Request::MapPartial {
            segments: segments.to_vec(),
            deadline_ms: self.deadline_ms(),
        };
        match self.exchange(&req)? {
            Response::Partials(partials) => Ok(partials),
            other => Err(unexpected("Partials", &other)),
        }
    }

    /// Map a batch through a router front-end, accepting a degraded
    /// answer: returns the mappings plus the registry ids of any shards
    /// missing from the merge (empty = the full, byte-exact answer). A
    /// router with every shard unreachable answers a typed error instead
    /// — a degraded answer always rests on at least one live shard.
    pub fn map_segments_degraded(
        &self,
        segments: &[QuerySegment],
    ) -> Result<(Vec<Mapping>, Vec<u32>), ServeError> {
        let req = Request::MapDegraded {
            segments: segments.to_vec(),
            deadline_ms: self.deadline_ms(),
        };
        match self.exchange(&req)? {
            Response::Mappings(mappings) => Ok((mappings, Vec::new())),
            Response::Degraded { mappings, missing } => Ok((mappings, missing)),
            other => Err(unexpected("Mappings or Degraded", &other)),
        }
    }

    /// [`Client::map_segments_degraded`] with bounded retries on
    /// [`ServeError::Busy`], mirroring [`Client::map_segments_retry`].
    pub fn map_segments_degraded_retry(
        &self,
        segments: &[QuerySegment],
        attempts: usize,
        backoff: Duration,
    ) -> Result<(Vec<Mapping>, Vec<u32>), ServeError> {
        let policy =
            RetryPolicy::new(attempts, backoff).with_jitter_seed(fnv1a64(self.addr.as_bytes()));
        self.with_busy_retry(&policy, || self.map_segments_degraded(segments))
    }

    /// Ask the server to hot-reload its index from `path` (a `jem index`
    /// artifact readable by the *server*). Loading and validation happen
    /// off the worker path; on success the server atomically swaps epochs
    /// and answers with a human-readable summary of the new index. On
    /// failure the old index keeps serving and the error is returned as
    /// [`ServeError::Remote`].
    pub fn reload(&self, path: impl Into<String>) -> Result<String, ServeError> {
        match self.exchange(&Request::Reload { path: path.into() })? {
            Response::Reloaded(summary) => Ok(summary),
            other => Err(unexpected("Reloaded", &other)),
        }
    }

    /// Ask the server to shut down gracefully (drain queued work, flush
    /// metrics, exit). Returns once the server acknowledges.
    pub fn shutdown_server(&self) -> Result<(), ServeError> {
        match self.exchange(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

/// Retry behaviour for [`Client::map_segments_with_policy`]: capped
/// exponential backoff with deterministic jitter and a total sleep budget.
///
/// Attempt `i` (1-based, the first retry) sleeps
/// `min(base × 2^(i−1), cap)` plus a jitter drawn deterministically from
/// `jitter_seed` and `i` (splitmix64 — no `SystemTime`, so runs are
/// reproducible), uniform over half the capped backoff. Once cumulative
/// sleep would exceed `budget`, retrying stops and the call fails with
/// [`ServeError::Busy`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1 is enforced at call time).
    pub attempts: usize,
    /// Backoff before the first retry; doubles per retry up to `cap`.
    pub base: Duration,
    /// Upper bound on any single backoff pause.
    pub cap: Duration,
    /// Upper bound on *total* sleep across all retries.
    pub budget: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new(5, Duration::from_millis(50))
    }
}

impl RetryPolicy {
    /// A policy with `attempts` attempts and backoff base `base`; the cap
    /// defaults to `16 × base` and the total budget to `64 × base` (the
    /// old linear schedule's worst case for its default parameters).
    pub fn new(attempts: usize, base: Duration) -> Self {
        RetryPolicy {
            attempts,
            base,
            cap: base.saturating_mul(16),
            budget: base.saturating_mul(64),
            jitter_seed: 0x6a65_6d2d_7372_7631, // "jem-srv1"
        }
    }

    /// Same policy with a different jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Same policy with a different single-pause cap.
    pub fn with_cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Same policy with a different total sleep budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// The pause before retry `attempt` (1-based): capped exponential plus
    /// deterministic jitter in `[0, capped/2]`. Public because the router's
    /// circuit breaker reuses this exact schedule for its reopen cooldown
    /// (attempt = consecutive opens), keeping one backoff vocabulary — and
    /// one jitter discipline — across the serve tier.
    pub fn pause_before(&self, attempt: usize) -> Duration {
        let doublings = u32::try_from(attempt.saturating_sub(1)).unwrap_or(u32::MAX);
        let exp = match 2u32.checked_pow(doublings.min(16)) {
            Some(mult) => self.base.saturating_mul(mult),
            None => self.cap,
        };
        let capped = exp.min(self.cap);
        let half_ns = capped.as_nanos() as u64 / 2;
        if half_ns == 0 {
            return capped;
        }
        let jitter_ns = splitmix64(self.jitter_seed ^ attempt as u64) % (half_ns + 1);
        capped + Duration::from_nanos(jitter_ns)
    }
}

/// SplitMix64: the same tiny deterministic generator `jem-psim`'s fault
/// plans use — one multiply-xor-shift chain, full 64-bit period.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether re-sending `req` can never make the server act twice. Queries
/// and probes are pure; `Shutdown` and `Reload` mutate server state. A
/// tagged envelope is exactly as idempotent as the request it wraps.
pub(crate) fn is_idempotent(req: &Request) -> bool {
    match req {
        Request::Shutdown | Request::Reload { .. } => false,
        Request::Tagged { inner, .. } => is_idempotent(inner),
        _ => true,
    }
}

/// Whether `e` is a mid-request connection loss a fresh connection can
/// transparently absorb. `ConnectionRefused` is deliberately *not* here:
/// it means nobody is listening, and an instant identical retry would
/// just fail again (callers have `RetryPolicy` / the router's breaker for
/// that).
fn is_connection_loss(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// Map an unexpected response onto the matching error. Shared with the
/// router's pooled fetch path, which speaks the same response vocabulary.
pub(crate) fn unexpected(wanted: &str, got: &Response) -> ServeError {
    match got {
        Response::Busy => ServeError::Busy,
        Response::Expired => ServeError::Expired,
        Response::ShuttingDown => ServeError::ShuttingDown,
        Response::Throttled { retry_after_ms } => ServeError::Throttled {
            retry_after: Duration::from_millis(*retry_after_ms),
        },
        Response::Error(msg) => ServeError::Remote(msg.clone()),
        other => ServeError::protocol(format!("expected {wanted}, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let base = Duration::from_millis(10);
        let policy = RetryPolicy::new(10, base).with_cap(Duration::from_millis(40));
        for attempt in 1..=9 {
            let pause = policy.pause_before(attempt);
            let capped_floor = (base * 2u32.pow(attempt as u32 - 1)).min(policy.cap);
            assert!(pause >= capped_floor, "attempt {attempt}: below floor");
            assert!(
                pause <= capped_floor + capped_floor / 2,
                "attempt {attempt}: jitter exceeds half the capped backoff"
            );
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let policy = RetryPolicy::new(5, Duration::from_millis(10)).with_jitter_seed(7);
        let again = RetryPolicy::new(5, Duration::from_millis(10)).with_jitter_seed(7);
        let other = RetryPolicy::new(5, Duration::from_millis(10)).with_jitter_seed(8);
        for attempt in 1..5 {
            assert_eq!(policy.pause_before(attempt), again.pause_before(attempt));
        }
        assert!(
            (1..5).any(|a| policy.pause_before(a) != other.pause_before(a)),
            "different seeds should jitter differently somewhere"
        );
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let policy = RetryPolicy::new(usize::MAX, Duration::from_millis(10));
        let pause = policy.pause_before(usize::MAX);
        assert!(pause <= policy.cap + policy.cap / 2);
    }

    /// The one timeout the reconnect stubs and their clients share: the
    /// stub's read timeouts derive from what the client under test is
    /// configured with, not from an unrelated magic constant (a client
    /// slower than the stub's patience would see spurious failures).
    const STUB_TIMEOUT: Duration = Duration::from_secs(5);

    /// A stub server whose first connection is half-closed after reading
    /// the request (no reply — the client sees `UnexpectedEof`), and whose
    /// later connections are answered with `reply`.
    fn half_close_then(reply: Response) -> (String, std::thread::JoinHandle<()>) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            // First connection: swallow the request, close without a reply.
            if let Ok((mut conn, _)) = listener.accept() {
                let _ = conn.set_read_timeout(Some(STUB_TIMEOUT));
                let _ = read_frame_versioned(&mut conn);
            }
            // Any later connection gets a real reply (at most two matter).
            for _ in 0..2 {
                let Ok((mut conn, _)) = listener.accept() else {
                    return;
                };
                let _ = conn.set_read_timeout(Some(STUB_TIMEOUT));
                if read_frame_versioned(&mut conn).is_ok() {
                    let _ = write_frame_versioned(&mut conn, &reply.encode(), reply.wire_version());
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn idempotent_request_reconnects_once_after_half_close() {
        let (addr, server) = half_close_then(Response::Pong);
        let client = Client::new(addr.clone()).with_timeout(STUB_TIMEOUT);
        client
            .ping()
            .expect("one half-close must be absorbed by a transparent reconnect");
        // Unblock the stub's remaining accept so it can exit.
        let _ = std::net::TcpStream::connect(&addr);
        server.join().unwrap();
    }

    #[test]
    fn shutdown_is_never_retried_after_half_close() {
        // If the client (incorrectly) re-sent the Shutdown, the stub's
        // second accept would answer ShuttingDown and the call would
        // succeed; the contract is that the io error surfaces instead.
        let (addr, server) = half_close_then(Response::ShuttingDown);
        let client = Client::new(addr.clone()).with_timeout(STUB_TIMEOUT);
        let err = client
            .shutdown_server()
            .expect_err("a half-closed Shutdown must surface, not be re-sent");
        assert!(
            matches!(err, ServeError::Io(_)),
            "expected the raw io error, got: {err}"
        );
        // Unblock the stub's remaining accepts so it can exit.
        let _ = std::net::TcpStream::connect(&addr);
        let _ = std::net::TcpStream::connect(&addr);
        server.join().unwrap();
    }

    #[test]
    fn connection_loss_kinds_are_exactly_the_reconnectable_set() {
        use std::io::{Error, ErrorKind};
        for kind in [
            ErrorKind::ConnectionReset,
            ErrorKind::BrokenPipe,
            ErrorKind::UnexpectedEof,
        ] {
            assert!(is_connection_loss(&Error::new(kind, "x")), "{kind:?}");
        }
        for kind in [ErrorKind::ConnectionRefused, ErrorKind::TimedOut] {
            assert!(!is_connection_loss(&Error::new(kind, "x")), "{kind:?}");
        }
        assert!(is_idempotent(&Request::Ping));
        assert!(is_idempotent(&Request::Map {
            segments: Vec::new(),
            deadline_ms: None
        }));
        assert!(is_idempotent(&Request::MapPartial {
            segments: Vec::new(),
            deadline_ms: None
        }));
        assert!(!is_idempotent(&Request::Shutdown));
        assert!(!is_idempotent(&Request::Reload { path: "x".into() }));
        // The envelope is as idempotent as what it wraps.
        assert!(is_idempotent(&Request::Tagged {
            client_id: "c".into(),
            inner: Box::new(Request::Ping),
        }));
        assert!(!is_idempotent(&Request::Tagged {
            client_id: "c".into(),
            inner: Box::new(Request::Shutdown),
        }));
    }

    #[test]
    fn throttled_response_maps_to_the_typed_error() {
        let err = unexpected("Mappings", &Response::Throttled { retry_after_ms: 40 });
        match err {
            ServeError::Throttled { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(40));
            }
            other => panic!("expected Throttled, got {other}"),
        }
    }

    #[test]
    fn an_identified_client_speaks_v3_envelopes_on_the_wire() {
        use crate::protocol::{ProtocolVersion, MAGIC_V3};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let _ = conn.set_read_timeout(Some(STUB_TIMEOUT));
            let (version, body) = read_frame_versioned(&mut conn).unwrap();
            let req = Request::decode_versioned(&body, version).unwrap();
            let _ = write_frame_versioned(
                &mut conn,
                &Response::Pong.encode(),
                Response::Pong.wire_version(),
            );
            (version, req)
        });
        let client = Client::new(addr)
            .with_timeout(STUB_TIMEOUT)
            .with_client_id("triage-7");
        client.ping().unwrap();
        let (version, req) = server.join().unwrap();
        assert_eq!(version, ProtocolVersion::V3);
        assert_eq!(version.magic(), MAGIC_V3);
        assert_eq!(req.untag(), (Some("triage-7".to_string()), Request::Ping));
    }

    #[test]
    fn retry_honors_the_throttle_hint_and_surfaces_the_typed_error() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let client = Client::new("127.0.0.1:1");
        // The pause before the retry after a Throttled must be at least
        // the hint, even when the policy's own backoff is smaller.
        let policy = RetryPolicy::new(2, Duration::from_millis(1));
        let hint = Duration::from_millis(30);
        let calls = AtomicUsize::new(0);
        let started = std::time::Instant::now();
        let out: Result<(), ServeError> = client.with_busy_retry(&policy, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(ServeError::Throttled { retry_after: hint })
        });
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert!(
            started.elapsed() >= hint,
            "the retry must sleep at least the server's hint"
        );
        match out {
            Err(ServeError::Throttled { retry_after }) => assert_eq!(retry_after, hint),
            other => panic!("exhaustion must surface the typed Throttled, got {other:?}"),
        }
        // A hint beyond the sleep budget stops retrying immediately but
        // still reports the throttle, not a generic Busy.
        let stingy =
            RetryPolicy::new(3, Duration::from_millis(1)).with_budget(Duration::from_millis(5));
        let out: Result<(), ServeError> = client.with_busy_retry(&stingy, || {
            Err(ServeError::Throttled {
                retry_after: Duration::from_secs(60),
            })
        });
        assert!(matches!(out, Err(ServeError::Throttled { .. })));
    }

    #[test]
    fn deadline_ms_rounds_up_and_saturates() {
        let c = Client::new("127.0.0.1:1");
        assert_eq!(c.deadline_ms(), None);
        let c = c.with_deadline(Duration::from_micros(10));
        assert_eq!(c.deadline_ms(), Some(1), "sub-ms budgets round up to 1");
        let c = c.with_deadline(Duration::from_millis(250));
        assert_eq!(c.deadline_ms(), Some(250));
        let c = c.with_deadline(Duration::MAX);
        assert_eq!(c.deadline_ms(), Some(u64::MAX - 1), "never the sentinel");
        assert_eq!(c.without_deadline().deadline_ms(), None);
    }
}
