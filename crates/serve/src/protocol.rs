//! The `jem-serve` wire protocol: length-prefixed, checksummed binary
//! frames carrying typed request/response messages.
//!
//! Frame layout (all integers little-endian; see DESIGN.md §10):
//!
//! ```text
//! magic  b"JEMSRV1\0" | b"JEMSRV2\0" | b"JEMSRV3!"     8 bytes
//! body_len (bytes)        u64   (capped at MAX_BODY)
//! fnv1a64(body)           u64
//! body:
//!   tag                   u64
//!   payload               tag-specific
//! ```
//!
//! Two protocol revisions share this frame shape:
//!
//! * **`JEMSRV1`** — the original request/response set (`Ping`, `Info`,
//!   `Map`, `Shutdown`). Still decoded unchanged, so pre-deadline clients
//!   keep working against an upgraded server.
//! * **`JEMSRV2`** — adds an optional per-request deadline to `Map`
//!   (encoded as a millisecond budget word; `u64::MAX` means "none"), the
//!   [`Request::Reload`] admin message, the [`Response::Expired`] /
//!   [`Response::Reloaded`] replies, and the scatter-gather router
//!   messages: [`Request::MapPartial`] / [`Response::Partials`] (shard
//!   halves of a gather) and [`Request::MapDegraded`] /
//!   [`Response::Degraded`] (router front-end, partial answers allowed).
//!   A client only emits a `JEMSRV2` frame when it actually uses a v2
//!   feature ([`Request::wire_version`]), so a deadline-free exchange is
//!   byte-identical to v1.
//! * **`JEMSRV3`** — adds the [`Request::Tagged`] envelope (an optional
//!   client identity wrapped around any v1/v2 request, feeding per-client
//!   admission quotas and fair queueing) and the [`Response::Throttled`]
//!   rejection carrying a `retry_after` hint. The v3 magic pads with `'!'`
//!   rather than `'\0'` deliberately: `'1' ^ 0x02 == '3'` and
//!   `'2' ^ 0x01 == '3'`, so a `\0`-padded v3 magic would be one bit flip
//!   away from each frozen revision and a single-bit transit error could
//!   alias revisions undetected (the checksum covers only the body). With
//!   the `'!'` pad every pair of magics differs in at least two bits. A v3
//!   frame also signals that the connection may be reused for further
//!   requests (keep-alive); v1/v2 connections stay one-shot, exactly as
//!   before.
//!
//! The frame checksum follows the persist-v3 convention of
//! `jem_core::persist`: FNV-1a over the whole body, so any byte-level
//! damage in transit is a decode error, never a panic or a garbled
//! mapping. Both sides of the connection speak the same frame; only the
//! tag namespaces differ (requests vs responses).

use crate::ServeError;
use jem_core::{MapperConfig, Mapping, QuerySegment, ReadEnd};
use jem_index::SubjectId;
use jem_sketch::SketchScheme;
use std::io::{Read, Write};

/// Frame magic of protocol revision 1 (kept as `MAGIC` for compatibility).
pub const MAGIC: &[u8; 8] = b"JEMSRV1\0";

/// Frame magic of protocol revision 2 (deadlines, reload).
pub const MAGIC_V2: &[u8; 8] = b"JEMSRV2\0";

/// Frame magic of protocol revision 3 (client identity, throttling,
/// connection reuse). Padded with `'!'` so that no single-bit flip can
/// turn one revision's magic into another's (see the module docs).
pub const MAGIC_V3: &[u8; 8] = b"JEMSRV3!";

/// Longest client id a [`Request::Tagged`] envelope may carry. Ids feed a
/// bounded per-client bucket map, so the bound is hygiene, not capacity.
pub const MAX_CLIENT_ID: usize = 128;

/// Deadline word meaning "no deadline" in a v2 `Map` body.
const NO_DEADLINE: u64 = u64::MAX;

/// Upper bound on a frame body. Frames are decoded into memory, so the
/// bound is what stops a hostile or corrupt length word from driving an
/// unbounded allocation (1 GiB comfortably holds any real segment batch).
pub const MAX_BODY: u64 = 1 << 30;

/// Which revision of the frame protocol a peer spoke, taken from the
/// frame magic. The body layout of `Map` depends on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolVersion {
    /// `JEMSRV1`: no deadlines, no reload.
    V1,
    /// `JEMSRV2`: optional `Map` deadline, `Reload`, `Expired`, `Reloaded`.
    V2,
    /// `JEMSRV3`: client identity (`Tagged`), `Throttled`, keep-alive.
    V3,
}

impl ProtocolVersion {
    /// The frame magic of this revision.
    pub fn magic(self) -> &'static [u8; 8] {
        match self {
            ProtocolVersion::V1 => MAGIC,
            ProtocolVersion::V2 => MAGIC_V2,
            ProtocolVersion::V3 => MAGIC_V3,
        }
    }
}

/// FNV-1a over raw bytes — same checksum the index persist frame uses.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; the server answers [`Response::Pong`] inline.
    Ping,
    /// Ask for the served index's parameters and subject names.
    Info,
    /// Map a batch of query end segments.
    Map {
        /// The segments to map (client-side `read_idx`/`end` are echoed
        /// back in the mappings).
        segments: Vec<QuerySegment>,
        /// Optional time budget in milliseconds, measured by the server
        /// from admission: a request still queued when its budget has
        /// elapsed is shed with [`Response::Expired`] instead of burning a
        /// worker on an answer nobody is waiting for. `None` (and every v1
        /// frame) never expires.
        deadline_ms: Option<u64>,
    },
    /// Begin a graceful shutdown: the server stops accepting, drains
    /// queued work, flushes metrics, and exits.
    Shutdown,
    /// Ask the server to load, validate, and atomically swap in the index
    /// persisted at `path` (a server-local path). In-flight batches finish
    /// on the old index; a failed load leaves the old index serving.
    Reload {
        /// Server-local filesystem path of the persisted index.
        path: String,
    },
    /// Map a batch of segments but return the per-trial collision *sets*
    /// instead of the argmax — the shard half of a router scatter-gather
    /// (v2 only). Per-trial sets from disjoint slot ranges union
    /// associatively, which is what makes the router's merge byte-exact.
    MapPartial {
        /// The segments to sketch and probe.
        segments: Vec<QuerySegment>,
        /// Same semantics as [`Request::Map::deadline_ms`]; the router
        /// forwards its remaining budget here.
        deadline_ms: Option<u64>,
    },
    /// Map a batch through a router front-end, accepting a
    /// [`Response::Degraded`] answer when shards are unavailable (v2
    /// only). A plain [`Request::Map`] to a router is strict: any missing
    /// shard fails the whole query with a typed error naming the gaps.
    MapDegraded {
        /// The segments to map.
        segments: Vec<QuerySegment>,
        /// Same semantics as [`Request::Map::deadline_ms`].
        deadline_ms: Option<u64>,
    },
    /// A client-identity envelope around any v1/v2 request (v3 only).
    /// The id keys per-client admission quotas and fair-queue lanes;
    /// untagged requests share an anonymous lane. Wrapping an envelope in
    /// another envelope is a protocol error, as is an empty or oversized
    /// id. Because the identity rides in a *wrapper* rather than in new
    /// fields on existing variants, every v1/v2 body layout — and every
    /// pre-v3 decoder — is untouched.
    Tagged {
        /// Caller-chosen identity, at most [`MAX_CLIENT_ID`] bytes.
        client_id: String,
        /// The request being made on that client's behalf.
        inner: Box<Request>,
    },
}

impl Request {
    /// Split off the optional [`Request::Tagged`] envelope: the client id
    /// (if any) and the request proper.
    pub fn untag(self) -> (Option<String>, Request) {
        match self {
            Request::Tagged { client_id, inner } => (Some(client_id), *inner),
            other => (None, other),
        }
    }
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Info`].
    Info(ServerInfo),
    /// Answer to [`Request::Map`]: the batch's mappings, in the total
    /// order documented on [`Mapping`].
    Mappings(Vec<Mapping>),
    /// The bounded request queue is full — try again later (backpressure;
    /// the server never buffers unboundedly).
    Busy,
    /// The request was malformed or failed; human-readable reason.
    Error(String),
    /// Acknowledges [`Request::Shutdown`].
    ShuttingDown,
    /// The request's deadline elapsed while it was queued; it was shed
    /// without mapping (v2 only — v1 clients cannot set deadlines).
    Expired,
    /// Acknowledges a successful [`Request::Reload`]; carries a
    /// human-readable summary of the new index (v2 only).
    Reloaded(String),
    /// Answer to [`Request::MapPartial`]: one [`SegmentPartials`] per
    /// requested segment, in request order, echoing each segment's
    /// identity (v2 only).
    Partials(Vec<SegmentPartials>),
    /// Answer to [`Request::MapDegraded`] when some shards were
    /// unavailable: the best mappings derivable from the shards that did
    /// answer, plus the exact ids of the shards that are missing from the
    /// merge (v2 only). A fully healthy gather answers
    /// [`Response::Mappings`] instead.
    Degraded {
        /// Mappings merged from the surviving shards, in the total order
        /// documented on [`Mapping`].
        mappings: Vec<Mapping>,
        /// Registry ids of the shards missing from the merge (sorted,
        /// deduplicated, never empty).
        missing: Vec<u32>,
    },
    /// The client's admission quota is exhausted (v3 only — only a
    /// [`Request::Tagged`] peer can receive it; pre-v3 and anonymous peers
    /// get [`Response::Busy`] instead). Distinct from `Busy`: the server
    /// has capacity, but *this client* is over its rate, and the hint says
    /// when its bucket will afford the retry.
    Throttled {
        /// Milliseconds until the client's token bucket can afford the
        /// rejected request.
        retry_after_ms: u64,
    },
}

/// One segment's share of a shard's sketch-table probe: for every trial,
/// the *deduplicated* set of subject ids whose sketch collided with the
/// segment in that shard's slot range.
///
/// This is the largest unit that still merges exactly: per-trial sets from
/// disjoint slot ranges union associatively and commutatively, and the
/// lazy-counter argmax (max trial count, ties to the smaller subject id)
/// is a pure function of the union — so a router can gather these from
/// independent shard processes in any order and reproduce the
/// single-process answer byte for byte. Summed per-shard *counts* would
/// not merge (one subject can collide with different codes of the same
/// trial on different shards).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentPartials {
    /// Echo of the requested segment's read index.
    pub read_idx: u32,
    /// Echo of the requested segment's end.
    pub end: ReadEnd,
    /// Per-trial deduplicated (sorted) subject-id collision sets.
    pub trials: Vec<Vec<SubjectId>>,
}

/// What a server tells clients about the index it serves.
///
/// Carries everything `jem query` needs to segment reads identically to
/// the offline driver (`ell`) and to render the same TSV (names, trials).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// The mapper configuration of the loaded index.
    pub config: MapperConfig,
    /// The sketch-position scheme of the loaded index.
    pub scheme: SketchScheme,
    /// Subject (contig) names, indexed by subject id.
    pub subject_names: Vec<String>,
    /// Number of shards the sketch table is partitioned into.
    pub shards: usize,
    /// Max segments a worker folds into one index pass.
    pub batch: usize,
}

// --- tag values ---------------------------------------------------------

const REQ_PING: u64 = 0;
const REQ_INFO: u64 = 1;
const REQ_MAP: u64 = 2;
const REQ_SHUTDOWN: u64 = 3;
const REQ_RELOAD: u64 = 4;
const REQ_MAP_PARTIAL: u64 = 5;
const REQ_MAP_DEGRADED: u64 = 6;
const REQ_TAGGED: u64 = 7;

const RESP_PONG: u64 = 0;
const RESP_INFO: u64 = 1;
const RESP_MAPPINGS: u64 = 2;
const RESP_BUSY: u64 = 3;
const RESP_ERROR: u64 = 4;
const RESP_SHUTTING_DOWN: u64 = 5;
const RESP_EXPIRED: u64 = 6;
const RESP_RELOADED: u64 = 7;
const RESP_PARTIALS: u64 = 8;
const RESP_DEGRADED: u64 = 9;
const RESP_THROTTLED: u64 = 10;

// --- body primitives ----------------------------------------------------

fn put_u64(body: &mut Vec<u8>, v: u64) {
    body.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(body: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(body, bytes.len() as u64);
    body.extend_from_slice(bytes);
}

/// Cursor over a received body; every read is bounds-checked so a
/// malformed body is an error, never a panic.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Cursor { body, at: 0 }
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        let end = self.at + 8;
        let bytes = self
            .body
            .get(self.at..end)
            .ok_or_else(|| ServeError::protocol("body truncated reading u64"))?;
        self.at = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn usize(&mut self) -> Result<usize, ServeError> {
        usize::try_from(self.u64()?).map_err(|_| ServeError::protocol("length overflows usize"))
    }

    fn bytes(&mut self) -> Result<&'a [u8], ServeError> {
        let len = self.usize()?;
        let end = self
            .at
            .checked_add(len)
            .ok_or_else(|| ServeError::protocol("length overflows body"))?;
        let bytes = self
            .body
            .get(self.at..end)
            .ok_or_else(|| ServeError::protocol("body truncated reading bytes"))?;
        self.at = end;
        Ok(bytes)
    }

    fn string(&mut self) -> Result<String, ServeError> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| ServeError::protocol("string is not UTF-8"))
    }

    fn finish(self) -> Result<(), ServeError> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(ServeError::protocol("trailing garbage after message body"))
        }
    }
}

/// Encode a mapping batch: count, then four words per mapping.
fn put_mappings(body: &mut Vec<u8>, mappings: &[Mapping]) {
    put_u64(body, mappings.len() as u64);
    for m in mappings {
        put_u64(body, u64::from(m.read_idx));
        put_u64(body, end_code(m.end));
        put_u64(body, u64::from(m.subject));
        put_u64(body, u64::from(m.hits));
    }
}

/// Decode a mapping batch written by [`put_mappings`].
fn read_mappings(c: &mut Cursor<'_>, body_len: usize) -> Result<Vec<Mapping>, ServeError> {
    let n = c.usize()?;
    let mut mappings = Vec::with_capacity(n.min(body_len / 32 + 1));
    for _ in 0..n {
        let read_idx =
            u32::try_from(c.u64()?).map_err(|_| ServeError::protocol("read_idx overflows u32"))?;
        let end = decode_end(c.u64()?)?;
        let subject =
            u32::try_from(c.u64()?).map_err(|_| ServeError::protocol("subject overflows u32"))?;
        let hits =
            u32::try_from(c.u64()?).map_err(|_| ServeError::protocol("hits overflows u32"))?;
        mappings.push(Mapping {
            read_idx,
            end,
            subject,
            hits,
        });
    }
    Ok(mappings)
}

/// Encode a segment batch: count, then `(read_idx, end, seq)` triples.
fn put_segments(body: &mut Vec<u8>, segments: &[QuerySegment]) {
    put_u64(body, segments.len() as u64);
    for seg in segments {
        put_u64(body, u64::from(seg.read_idx));
        put_u64(body, end_code(seg.end));
        put_bytes(body, &seg.seq);
    }
}

/// Decode a segment batch written by [`put_segments`]. `body_len` bounds
/// the defensive pre-allocation (a lying count word must not drive it).
fn read_segments(c: &mut Cursor<'_>, body_len: usize) -> Result<Vec<QuerySegment>, ServeError> {
    let n = c.usize()?;
    // Sized by what the body can actually hold, not the header.
    let mut segments = Vec::with_capacity(n.min(body_len / 24 + 1));
    for _ in 0..n {
        let read_idx =
            u32::try_from(c.u64()?).map_err(|_| ServeError::protocol("read_idx overflows u32"))?;
        let end = decode_end(c.u64()?)?;
        let seq = c.bytes()?.to_vec();
        segments.push(QuerySegment { read_idx, end, seq });
    }
    Ok(segments)
}

fn end_code(end: ReadEnd) -> u64 {
    match end {
        ReadEnd::Prefix => 0,
        ReadEnd::Suffix => 1,
    }
}

fn decode_end(code: u64) -> Result<ReadEnd, ServeError> {
    match code {
        0 => Ok(ReadEnd::Prefix),
        1 => Ok(ReadEnd::Suffix),
        other => Err(ServeError::protocol(format!("unknown read end {other}"))),
    }
}

// --- message encoding ---------------------------------------------------

impl Request {
    /// The lowest protocol revision that can carry this request: v1 for
    /// everything a v1 peer could say, v2 as soon as a v2-only feature
    /// (deadline, reload) is used. [`Request::encode`] emits this
    /// revision's body layout, so encoders and the wire magic agree.
    pub fn wire_version(&self) -> ProtocolVersion {
        match self {
            Request::Tagged { .. } => ProtocolVersion::V3,
            Request::Reload { .. } => ProtocolVersion::V2,
            Request::MapPartial { .. } | Request::MapDegraded { .. } => ProtocolVersion::V2,
            Request::Map {
                deadline_ms: Some(_),
                ..
            } => ProtocolVersion::V2,
            _ => ProtocolVersion::V1,
        }
    }

    /// Serialize to a frame body in the layout of [`Request::wire_version`].
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Request::Ping => put_u64(&mut body, REQ_PING),
            Request::Info => put_u64(&mut body, REQ_INFO),
            Request::Shutdown => put_u64(&mut body, REQ_SHUTDOWN),
            Request::Reload { path } => {
                put_u64(&mut body, REQ_RELOAD);
                put_bytes(&mut body, path.as_bytes());
            }
            Request::Map {
                segments,
                deadline_ms,
            } => {
                put_u64(&mut body, REQ_MAP);
                // The deadline word exists only in the v2 body layout; a
                // deadline-free Map encodes as v1 for compatibility.
                if let Some(ms) = deadline_ms {
                    put_u64(&mut body, (*ms).min(NO_DEADLINE - 1));
                }
                put_segments(&mut body, segments);
            }
            Request::MapPartial {
                segments,
                deadline_ms,
            }
            | Request::MapDegraded {
                segments,
                deadline_ms,
            } => {
                let tag = if matches!(self, Request::MapPartial { .. }) {
                    REQ_MAP_PARTIAL
                } else {
                    REQ_MAP_DEGRADED
                };
                put_u64(&mut body, tag);
                // v2-only messages always carry the deadline word; the
                // sentinel encodes "none" (no v1 layout to stay aligned
                // with).
                put_u64(
                    &mut body,
                    deadline_ms.map_or(NO_DEADLINE, |ms| ms.min(NO_DEADLINE - 1)),
                );
                put_segments(&mut body, segments);
            }
            Request::Tagged { client_id, inner } => {
                // The inner request is nested as an opaque sub-body in its
                // *own* revision's layout (named by the version word), so
                // the envelope reuses the frozen v1/v2 encoders verbatim.
                put_u64(&mut body, REQ_TAGGED);
                let inner_version = match inner.wire_version() {
                    ProtocolVersion::V1 => 1,
                    ProtocolVersion::V2 => 2,
                    // Nested envelopes never encode; decode rejects them
                    // too, so the wire format stays one level deep.
                    ProtocolVersion::V3 => 3,
                };
                put_u64(&mut body, inner_version);
                put_bytes(&mut body, client_id.as_bytes());
                put_bytes(&mut body, &inner.encode());
            }
        }
        body
    }

    /// Deserialize a v1 frame body (compatibility alias for
    /// [`Request::decode_versioned`] with [`ProtocolVersion::V1`]).
    pub fn decode(body: &[u8]) -> Result<Request, ServeError> {
        Request::decode_versioned(body, ProtocolVersion::V1)
    }

    /// Deserialize a frame body whose frame carried `version`'s magic.
    /// v1 bodies decode exactly as they always have.
    pub fn decode_versioned(body: &[u8], version: ProtocolVersion) -> Result<Request, ServeError> {
        let mut c = Cursor::new(body);
        let req = match c.u64()? {
            REQ_PING => Request::Ping,
            REQ_INFO => Request::Info,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_RELOAD => {
                if version == ProtocolVersion::V1 {
                    return Err(ServeError::protocol("unknown request tag 4"));
                }
                Request::Reload { path: c.string()? }
            }
            REQ_MAP => {
                let deadline_ms = match version {
                    ProtocolVersion::V1 => None,
                    ProtocolVersion::V2 | ProtocolVersion::V3 => match c.u64()? {
                        NO_DEADLINE => None,
                        ms => Some(ms),
                    },
                };
                let segments = read_segments(&mut c, body.len())?;
                Request::Map {
                    segments,
                    deadline_ms,
                }
            }
            tag @ (REQ_MAP_PARTIAL | REQ_MAP_DEGRADED) => {
                if version == ProtocolVersion::V1 {
                    return Err(ServeError::protocol(format!("unknown request tag {tag}")));
                }
                let deadline_ms = match c.u64()? {
                    NO_DEADLINE => None,
                    ms => Some(ms),
                };
                let segments = read_segments(&mut c, body.len())?;
                if tag == REQ_MAP_PARTIAL {
                    Request::MapPartial {
                        segments,
                        deadline_ms,
                    }
                } else {
                    Request::MapDegraded {
                        segments,
                        deadline_ms,
                    }
                }
            }
            REQ_TAGGED => {
                if version != ProtocolVersion::V3 {
                    return Err(ServeError::protocol("unknown request tag 7"));
                }
                let inner_version = match c.u64()? {
                    1 => ProtocolVersion::V1,
                    2 => ProtocolVersion::V2,
                    other => {
                        return Err(ServeError::protocol(format!(
                            "tagged envelope names unsupported inner revision {other}"
                        )))
                    }
                };
                let client_id = c.string()?;
                if client_id.is_empty() {
                    return Err(ServeError::protocol("empty client id in tagged envelope"));
                }
                if client_id.len() > MAX_CLIENT_ID {
                    return Err(ServeError::protocol(format!(
                        "client id of {} bytes exceeds the {MAX_CLIENT_ID}-byte bound",
                        client_id.len()
                    )));
                }
                // Inner revision is pinned to 1|2 above, so a nested
                // envelope (tag 7 under v1/v2) fails right here — the
                // format is one level deep by construction.
                let inner = Request::decode_versioned(c.bytes()?, inner_version)?;
                Request::Tagged {
                    client_id,
                    inner: Box::new(inner),
                }
            }
            other => return Err(ServeError::protocol(format!("unknown request tag {other}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// The lowest protocol revision that can carry this response. Replies
    /// that only v2 requests can provoke (`Expired`, `Reloaded`) are v2;
    /// everything else stays v1 so old clients decode it unchanged.
    pub fn wire_version(&self) -> ProtocolVersion {
        match self {
            Response::Throttled { .. } => ProtocolVersion::V3,
            Response::Expired
            | Response::Reloaded(_)
            | Response::Partials(_)
            | Response::Degraded { .. } => ProtocolVersion::V2,
            _ => ProtocolVersion::V1,
        }
    }

    /// Serialize to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Response::Pong => put_u64(&mut body, RESP_PONG),
            Response::Busy => put_u64(&mut body, RESP_BUSY),
            Response::ShuttingDown => put_u64(&mut body, RESP_SHUTTING_DOWN),
            Response::Expired => put_u64(&mut body, RESP_EXPIRED),
            Response::Error(msg) => {
                put_u64(&mut body, RESP_ERROR);
                put_bytes(&mut body, msg.as_bytes());
            }
            Response::Reloaded(msg) => {
                put_u64(&mut body, RESP_RELOADED);
                put_bytes(&mut body, msg.as_bytes());
            }
            Response::Throttled { retry_after_ms } => {
                put_u64(&mut body, RESP_THROTTLED);
                put_u64(&mut body, *retry_after_ms);
            }
            Response::Mappings(mappings) => {
                put_u64(&mut body, RESP_MAPPINGS);
                put_mappings(&mut body, mappings);
            }
            Response::Partials(partials) => {
                put_u64(&mut body, RESP_PARTIALS);
                put_u64(&mut body, partials.len() as u64);
                for p in partials {
                    put_u64(&mut body, u64::from(p.read_idx));
                    put_u64(&mut body, end_code(p.end));
                    put_u64(&mut body, p.trials.len() as u64);
                    for set in &p.trials {
                        put_u64(&mut body, set.len() as u64);
                        for &s in set {
                            put_u64(&mut body, u64::from(s));
                        }
                    }
                }
            }
            Response::Degraded { mappings, missing } => {
                put_u64(&mut body, RESP_DEGRADED);
                put_mappings(&mut body, mappings);
                put_u64(&mut body, missing.len() as u64);
                for &id in missing {
                    put_u64(&mut body, u64::from(id));
                }
            }
            Response::Info(info) => {
                put_u64(&mut body, RESP_INFO);
                let c = &info.config;
                for v in [
                    c.k as u64,
                    c.w as u64,
                    c.trials as u64,
                    c.ell as u64,
                    c.seed,
                ] {
                    put_u64(&mut body, v);
                }
                let (tag, param): (u64, u64) = match info.scheme {
                    SketchScheme::Minimizer { w } => (0, w as u64),
                    SketchScheme::ClosedSyncmer { s } => (1, s as u64),
                };
                put_u64(&mut body, tag);
                put_u64(&mut body, param);
                put_u64(&mut body, info.shards as u64);
                put_u64(&mut body, info.batch as u64);
                put_u64(&mut body, info.subject_names.len() as u64);
                for name in &info.subject_names {
                    put_bytes(&mut body, name.as_bytes());
                }
            }
        }
        body
    }

    /// Deserialize a frame body. Response bodies are laid out identically
    /// in both revisions (only the tag set grew), so no version parameter
    /// is needed; v2-only tags simply never reach a v1-only peer.
    pub fn decode(body: &[u8]) -> Result<Response, ServeError> {
        let mut c = Cursor::new(body);
        let resp = match c.u64()? {
            RESP_PONG => Response::Pong,
            RESP_BUSY => Response::Busy,
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_EXPIRED => Response::Expired,
            RESP_ERROR => Response::Error(c.string()?),
            RESP_RELOADED => Response::Reloaded(c.string()?),
            RESP_THROTTLED => Response::Throttled {
                retry_after_ms: c.u64()?,
            },
            RESP_MAPPINGS => Response::Mappings(read_mappings(&mut c, body.len())?),
            RESP_PARTIALS => {
                let n = c.usize()?;
                // Every partial costs at least three body words.
                let mut partials = Vec::with_capacity(n.min(body.len() / 24 + 1));
                for _ in 0..n {
                    let read_idx = u32::try_from(c.u64()?)
                        .map_err(|_| ServeError::protocol("read_idx overflows u32"))?;
                    let end = decode_end(c.u64()?)?;
                    let n_trials = c.usize()?;
                    let mut trials = Vec::with_capacity(n_trials.min(body.len() / 8 + 1));
                    for _ in 0..n_trials {
                        let n_subjects = c.usize()?;
                        let mut set = Vec::with_capacity(n_subjects.min(body.len() / 8 + 1));
                        for _ in 0..n_subjects {
                            set.push(
                                u32::try_from(c.u64()?)
                                    .map_err(|_| ServeError::protocol("subject overflows u32"))?,
                            );
                        }
                        trials.push(set);
                    }
                    partials.push(SegmentPartials {
                        read_idx,
                        end,
                        trials,
                    });
                }
                Response::Partials(partials)
            }
            RESP_DEGRADED => {
                let mappings = read_mappings(&mut c, body.len())?;
                let n = c.usize()?;
                let mut missing = Vec::with_capacity(n.min(body.len() / 8 + 1));
                for _ in 0..n {
                    missing.push(
                        u32::try_from(c.u64()?)
                            .map_err(|_| ServeError::protocol("shard id overflows u32"))?,
                    );
                }
                Response::Degraded { mappings, missing }
            }
            RESP_INFO => {
                let config = MapperConfig {
                    k: c.usize()?,
                    w: c.usize()?,
                    trials: c.usize()?,
                    ell: c.usize()?,
                    seed: c.u64()?,
                };
                let (tag, param) = (c.u64()?, c.usize()?);
                let scheme = match tag {
                    0 => SketchScheme::Minimizer { w: param },
                    1 => SketchScheme::ClosedSyncmer { s: param },
                    other => {
                        return Err(ServeError::protocol(format!("unknown scheme tag {other}")))
                    }
                };
                let shards = c.usize()?;
                let batch = c.usize()?;
                let n = c.usize()?;
                let mut subject_names = Vec::with_capacity(n.min(body.len() / 8 + 1));
                for _ in 0..n {
                    subject_names.push(c.string()?);
                }
                Response::Info(ServerInfo {
                    config,
                    scheme,
                    subject_names,
                    shards,
                    batch,
                })
            }
            other => {
                return Err(ServeError::protocol(format!(
                    "unknown response tag {other}"
                )))
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

// --- frame transport ----------------------------------------------------

/// Write one v1 frame (`MAGIC`, length, checksum, body) to `out`.
pub fn write_frame<W: Write>(out: &mut W, body: &[u8]) -> std::io::Result<()> {
    write_frame_versioned(out, body, ProtocolVersion::V1)
}

/// Write one frame carrying `version`'s magic to `out`.
pub fn write_frame_versioned<W: Write>(
    out: &mut W,
    body: &[u8],
    version: ProtocolVersion,
) -> std::io::Result<()> {
    out.write_all(version.magic())?;
    out.write_all(&(body.len() as u64).to_le_bytes())?;
    out.write_all(&fnv1a64(body).to_le_bytes())?;
    out.write_all(body)?;
    out.flush()
}

/// Read one frame from `input`, accepting either revision's magic and
/// discarding which one it was. See [`read_frame_versioned`].
pub fn read_frame<R: Read>(input: &mut R) -> Result<Vec<u8>, ServeError> {
    read_frame_versioned(input).map(|(_, body)| body)
}

/// Read one frame from `input`, verifying magic, length bound and
/// checksum, and reporting which protocol revision the magic named (the
/// body layout of `Map` depends on it). Never panics on malformed input;
/// never allocates more than the peer actually sent (the declared length
/// only bounds the read).
pub fn read_frame_versioned<R: Read>(
    input: &mut R,
) -> Result<(ProtocolVersion, Vec<u8>), ServeError> {
    let mut header = [0u8; 24];
    input.read_exact(&mut header)?;
    let version = if &header[..8] == MAGIC {
        ProtocolVersion::V1
    } else if &header[..8] == MAGIC_V2 {
        ProtocolVersion::V2
    } else if &header[..8] == MAGIC_V3 {
        ProtocolVersion::V3
    } else {
        return Err(ServeError::protocol("bad frame magic"));
    };
    let body_len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let declared = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    if body_len > MAX_BODY {
        return Err(ServeError::protocol(format!(
            "frame body of {body_len} bytes exceeds the {MAX_BODY}-byte bound"
        )));
    }
    let mut body = Vec::new();
    input.take(body_len).read_to_end(&mut body)?;
    if body.len() as u64 != body_len {
        return Err(ServeError::protocol(format!(
            "frame truncated: header declares {body_len} body bytes, got {}",
            body.len()
        )));
    }
    let computed = fnv1a64(&body);
    if computed != declared {
        return Err(ServeError::protocol(format!(
            "frame checksum mismatch: declared {declared:#018x}, computed {computed:#018x}"
        )));
    }
    Ok((version, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        write_frame_versioned(&mut wire, &req.encode(), req.wire_version()).unwrap();
        let (version, body) = read_frame_versioned(&mut wire.as_slice()).unwrap();
        assert_eq!(version, req.wire_version());
        assert_eq!(Request::decode_versioned(&body, version).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let mut wire = Vec::new();
        write_frame_versioned(&mut wire, &resp.encode(), resp.wire_version()).unwrap();
        let body = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Info);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Reload {
            path: "/tmp/new-index.jem".into(),
        });
        for deadline_ms in [None, Some(0), Some(1500)] {
            roundtrip_request(Request::Map {
                segments: vec![
                    QuerySegment {
                        read_idx: 0,
                        end: ReadEnd::Prefix,
                        seq: b"ACGTACGT".to_vec(),
                    },
                    QuerySegment {
                        read_idx: 7,
                        end: ReadEnd::Suffix,
                        seq: Vec::new(),
                    },
                ],
                deadline_ms,
            });
            roundtrip_request(Request::MapPartial {
                segments: vec![QuerySegment {
                    read_idx: 3,
                    end: ReadEnd::Suffix,
                    seq: b"ACGT".to_vec(),
                }],
                deadline_ms,
            });
            roundtrip_request(Request::MapDegraded {
                segments: Vec::new(),
                deadline_ms,
            });
        }
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Busy);
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::Expired);
        roundtrip_response(Response::Error("queue exploded".into()));
        roundtrip_response(Response::Reloaded("7 subjects, 812 entries".into()));
        roundtrip_response(Response::Mappings(vec![Mapping {
            read_idx: 3,
            end: ReadEnd::Suffix,
            subject: 12,
            hits: 9,
        }]));
        roundtrip_response(Response::Info(ServerInfo {
            config: MapperConfig::default(),
            scheme: SketchScheme::ClosedSyncmer { s: 11 },
            subject_names: vec!["contig_0".into(), "contig_1".into()],
            shards: 8,
            batch: 16,
        }));
        roundtrip_response(Response::Partials(vec![
            SegmentPartials {
                read_idx: 2,
                end: ReadEnd::Prefix,
                trials: vec![vec![0, 3, 9], Vec::new(), vec![7]],
            },
            SegmentPartials {
                read_idx: 2,
                end: ReadEnd::Suffix,
                trials: Vec::new(),
            },
        ]));
        roundtrip_response(Response::Degraded {
            mappings: vec![Mapping {
                read_idx: 1,
                end: ReadEnd::Prefix,
                subject: 4,
                hits: 6,
            }],
            missing: vec![1, 3],
        });
        roundtrip_response(Response::Degraded {
            mappings: Vec::new(),
            missing: vec![0],
        });
    }

    #[test]
    fn deadline_free_map_is_wire_identical_to_v1() {
        // The compatibility contract: a Map without a deadline encodes the
        // same bytes the v1 protocol always used, under the v1 magic.
        let req = Request::Map {
            segments: vec![QuerySegment {
                read_idx: 1,
                end: ReadEnd::Prefix,
                seq: b"ACGT".to_vec(),
            }],
            deadline_ms: None,
        };
        assert_eq!(req.wire_version(), ProtocolVersion::V1);
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn v2_only_messages_refuse_v1_decode() {
        let reload = Request::Reload { path: "x".into() };
        assert_eq!(reload.wire_version(), ProtocolVersion::V2);
        assert!(Request::decode(&reload.encode()).is_err());
        for req in [
            Request::MapPartial {
                segments: Vec::new(),
                deadline_ms: None,
            },
            Request::MapDegraded {
                segments: Vec::new(),
                deadline_ms: Some(5),
            },
        ] {
            assert_eq!(req.wire_version(), ProtocolVersion::V2);
            assert!(
                Request::decode(&req.encode()).is_err(),
                "router tags must be rejected by a v1 decode: {req:?}"
            );
            assert_eq!(
                Request::decode_versioned(&req.encode(), ProtocolVersion::V2).unwrap(),
                req
            );
        }
    }

    #[test]
    fn every_frame_byte_flip_detected() {
        for deadline_ms in [None, Some(25u64)] {
            let req = Request::Map {
                segments: vec![QuerySegment {
                    read_idx: 1,
                    end: ReadEnd::Prefix,
                    seq: b"ACGT".to_vec(),
                }],
                deadline_ms,
            };
            let mut wire = Vec::new();
            write_frame_versioned(&mut wire, &req.encode(), req.wire_version()).unwrap();
            for i in 0..wire.len() {
                let mut bad = wire.clone();
                bad[i] ^= 0x01;
                // Either the frame read fails (magic/length/checksum) or —
                // when a length-word flip pushes the declared length past
                // the bytes present — it is a truncation error. Decode is
                // never reached with a corrupt body. The single exception
                // would be a magic flip turning "JEMSRV1" into "JEMSRV2"
                // (or back), but '1' ^ 0x01 is '0', not '2', so a one-bit
                // flip cannot alias the two revisions.
                assert!(
                    read_frame_versioned(&mut bad.as_slice()).is_err(),
                    "flip of byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn garbage_bytes_rejected() {
        assert!(read_frame(&mut &b"GET / HTTP/1.1\r\n\r\n this is not jem"[..]).is_err());
        assert!(read_frame(&mut &b""[..]).is_err());
        assert!(read_frame(&mut &b"JEMSRV1\0"[..]).is_err());
        assert!(read_frame(&mut &b"JEMSRV2\0"[..]).is_err());
        assert!(read_frame(&mut &b"JEMSRV3\0aaaaaaaaaaaaaaaa"[..]).is_err());
    }

    #[test]
    fn oversized_length_word_rejected_without_allocating() {
        for magic in [MAGIC, MAGIC_V2] {
            let mut wire = magic.to_vec();
            wire.extend_from_slice(&u64::MAX.to_le_bytes());
            wire.extend_from_slice(&0u64.to_le_bytes());
            let err = read_frame(&mut wire.as_slice()).unwrap_err();
            assert!(err.to_string().contains("bound"), "got: {err}");
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        let mut body = Vec::new();
        put_u64(&mut body, 999);
        assert!(Request::decode(&body).is_err());
        assert!(Request::decode_versioned(&body, ProtocolVersion::V2).is_err());
        assert!(Response::decode(&body).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut body = Request::Ping.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
    }

    // --- v3: tagged envelopes, throttling -------------------------------

    fn tagged(client_id: &str, inner: Request) -> Request {
        Request::Tagged {
            client_id: client_id.into(),
            inner: Box::new(inner),
        }
    }

    #[test]
    fn v3_tagged_requests_roundtrip() {
        for inner in [
            Request::Ping,
            Request::Map {
                segments: vec![QuerySegment {
                    read_idx: 4,
                    end: ReadEnd::Suffix,
                    seq: b"ACGTACGT".to_vec(),
                }],
                deadline_ms: None,
            },
            Request::Map {
                segments: Vec::new(),
                deadline_ms: Some(250),
            },
            Request::MapPartial {
                segments: vec![QuerySegment {
                    read_idx: 0,
                    end: ReadEnd::Prefix,
                    seq: b"ACGT".to_vec(),
                }],
                deadline_ms: Some(99),
            },
        ] {
            roundtrip_request(tagged("alice", inner));
        }
        roundtrip_response(Response::Throttled { retry_after_ms: 0 });
        roundtrip_response(Response::Throttled {
            retry_after_ms: 1234,
        });
    }

    #[test]
    fn v3_tags_refuse_pre_v3_decode() {
        let req = tagged("alice", Request::Ping);
        assert_eq!(req.wire_version(), ProtocolVersion::V3);
        assert!(Request::decode(&req.encode()).is_err());
        assert!(Request::decode_versioned(&req.encode(), ProtocolVersion::V2).is_err());
    }

    #[test]
    fn nested_and_malformed_envelopes_rejected() {
        // A nested envelope names inner revision 3, which decode refuses.
        let nested = tagged("outer", tagged("inner", Request::Ping));
        assert!(Request::decode_versioned(&nested.encode(), ProtocolVersion::V3).is_err());
        // Empty and oversized ids are protocol errors, not lane keys.
        let empty = tagged("", Request::Ping);
        assert!(Request::decode_versioned(&empty.encode(), ProtocolVersion::V3).is_err());
        let huge = tagged(&"x".repeat(MAX_CLIENT_ID + 1), Request::Ping);
        assert!(Request::decode_versioned(&huge.encode(), ProtocolVersion::V3).is_err());
        let max = tagged(&"x".repeat(MAX_CLIENT_ID), Request::Ping);
        assert!(Request::decode_versioned(&max.encode(), ProtocolVersion::V3).is_ok());
    }

    #[test]
    fn v3_frame_every_byte_flip_detected() {
        let req = tagged(
            "greedy-7",
            Request::Map {
                segments: vec![QuerySegment {
                    read_idx: 1,
                    end: ReadEnd::Prefix,
                    seq: b"ACGT".to_vec(),
                }],
                deadline_ms: Some(25),
            },
        );
        let mut wire = Vec::new();
        write_frame_versioned(&mut wire, &req.encode(), req.wire_version()).unwrap();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x01;
            assert!(
                read_frame_versioned(&mut bad.as_slice()).is_err(),
                "flip of byte {i} went undetected"
            );
        }
    }

    #[test]
    fn no_single_bit_flip_aliases_any_two_magics() {
        // The property the '!' pad buys: every pair of revision magics
        // differs in at least two bits, so a one-bit transit error on the
        // (unchecksummed) magic can never silently switch revisions.
        let magics = [MAGIC, MAGIC_V2, MAGIC_V3];
        for (i, a) in magics.iter().enumerate() {
            for b in &magics[i + 1..] {
                let bits: u32 = a
                    .iter()
                    .zip(b.iter())
                    .map(|(x, y)| (x ^ y).count_ones())
                    .sum();
                assert!(bits >= 2, "{a:?} vs {b:?}: {bits} differing bits");
            }
        }
    }

    #[test]
    fn zero_padded_v3_magic_still_rejected() {
        // Pinned by garbage_bytes_rejected since before v3 existed: the
        // naive b"JEMSRV3\0" spelling stays invalid forever.
        assert!(read_frame(&mut &b"JEMSRV3\0aaaaaaaaaaaaaaaa"[..]).is_err());
    }

    #[test]
    fn untag_splits_envelope() {
        let (id, inner) = tagged("alice", Request::Ping).untag();
        assert_eq!(id.as_deref(), Some("alice"));
        assert_eq!(inner, Request::Ping);
        let (id, inner) = Request::Shutdown.untag();
        assert!(id.is_none());
        assert_eq!(inner, Request::Shutdown);
    }
}
