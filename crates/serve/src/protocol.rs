//! The `jem-serve` wire protocol: length-prefixed, checksummed binary
//! frames carrying typed request/response messages.
//!
//! Frame layout (all integers little-endian; see DESIGN.md §10):
//!
//! ```text
//! magic  b"JEMSRV1\0"     8 bytes
//! body_len (bytes)        u64   (capped at MAX_BODY)
//! fnv1a64(body)           u64
//! body:
//!   tag                   u64
//!   payload               tag-specific
//! ```
//!
//! The frame checksum follows the persist-v3 convention of
//! `jem_core::persist`: FNV-1a over the whole body, so any byte-level
//! damage in transit is a decode error, never a panic or a garbled
//! mapping. Both sides of the connection speak the same frame; only the
//! tag namespaces differ (requests vs responses).

use crate::ServeError;
use jem_core::{MapperConfig, Mapping, QuerySegment, ReadEnd};
use jem_sketch::SketchScheme;
use std::io::{Read, Write};

/// Frame magic: protocol name + version, one bump per incompatible change.
pub const MAGIC: &[u8; 8] = b"JEMSRV1\0";

/// Upper bound on a frame body. Frames are decoded into memory, so the
/// bound is what stops a hostile or corrupt length word from driving an
/// unbounded allocation (1 GiB comfortably holds any real segment batch).
pub const MAX_BODY: u64 = 1 << 30;

/// FNV-1a over raw bytes — same checksum the index persist frame uses.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; the server answers [`Response::Pong`] inline.
    Ping,
    /// Ask for the served index's parameters and subject names.
    Info,
    /// Map a batch of query end segments.
    Map {
        /// The segments to map (client-side `read_idx`/`end` are echoed
        /// back in the mappings).
        segments: Vec<QuerySegment>,
    },
    /// Begin a graceful shutdown: the server stops accepting, drains
    /// queued work, flushes metrics, and exits.
    Shutdown,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Info`].
    Info(ServerInfo),
    /// Answer to [`Request::Map`]: the batch's mappings, in the total
    /// order documented on [`Mapping`].
    Mappings(Vec<Mapping>),
    /// The bounded request queue is full — try again later (backpressure;
    /// the server never buffers unboundedly).
    Busy,
    /// The request was malformed or failed; human-readable reason.
    Error(String),
    /// Acknowledges [`Request::Shutdown`].
    ShuttingDown,
}

/// What a server tells clients about the index it serves.
///
/// Carries everything `jem query` needs to segment reads identically to
/// the offline driver (`ell`) and to render the same TSV (names, trials).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// The mapper configuration of the loaded index.
    pub config: MapperConfig,
    /// The sketch-position scheme of the loaded index.
    pub scheme: SketchScheme,
    /// Subject (contig) names, indexed by subject id.
    pub subject_names: Vec<String>,
    /// Number of shards the sketch table is partitioned into.
    pub shards: usize,
    /// Max segments a worker folds into one index pass.
    pub batch: usize,
}

// --- tag values ---------------------------------------------------------

const REQ_PING: u64 = 0;
const REQ_INFO: u64 = 1;
const REQ_MAP: u64 = 2;
const REQ_SHUTDOWN: u64 = 3;

const RESP_PONG: u64 = 0;
const RESP_INFO: u64 = 1;
const RESP_MAPPINGS: u64 = 2;
const RESP_BUSY: u64 = 3;
const RESP_ERROR: u64 = 4;
const RESP_SHUTTING_DOWN: u64 = 5;

// --- body primitives ----------------------------------------------------

fn put_u64(body: &mut Vec<u8>, v: u64) {
    body.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(body: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(body, bytes.len() as u64);
    body.extend_from_slice(bytes);
}

/// Cursor over a received body; every read is bounds-checked so a
/// malformed body is an error, never a panic.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(body: &'a [u8]) -> Self {
        Cursor { body, at: 0 }
    }

    fn u64(&mut self) -> Result<u64, ServeError> {
        let end = self.at + 8;
        let bytes = self
            .body
            .get(self.at..end)
            .ok_or_else(|| ServeError::protocol("body truncated reading u64"))?;
        self.at = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn usize(&mut self) -> Result<usize, ServeError> {
        usize::try_from(self.u64()?).map_err(|_| ServeError::protocol("length overflows usize"))
    }

    fn bytes(&mut self) -> Result<&'a [u8], ServeError> {
        let len = self.usize()?;
        let end = self
            .at
            .checked_add(len)
            .ok_or_else(|| ServeError::protocol("length overflows body"))?;
        let bytes = self
            .body
            .get(self.at..end)
            .ok_or_else(|| ServeError::protocol("body truncated reading bytes"))?;
        self.at = end;
        Ok(bytes)
    }

    fn string(&mut self) -> Result<String, ServeError> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| ServeError::protocol("string is not UTF-8"))
    }

    fn finish(self) -> Result<(), ServeError> {
        if self.at == self.body.len() {
            Ok(())
        } else {
            Err(ServeError::protocol("trailing garbage after message body"))
        }
    }
}

fn end_code(end: ReadEnd) -> u64 {
    match end {
        ReadEnd::Prefix => 0,
        ReadEnd::Suffix => 1,
    }
}

fn decode_end(code: u64) -> Result<ReadEnd, ServeError> {
    match code {
        0 => Ok(ReadEnd::Prefix),
        1 => Ok(ReadEnd::Suffix),
        other => Err(ServeError::protocol(format!("unknown read end {other}"))),
    }
}

// --- message encoding ---------------------------------------------------

impl Request {
    /// Serialize to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Request::Ping => put_u64(&mut body, REQ_PING),
            Request::Info => put_u64(&mut body, REQ_INFO),
            Request::Shutdown => put_u64(&mut body, REQ_SHUTDOWN),
            Request::Map { segments } => {
                put_u64(&mut body, REQ_MAP);
                put_u64(&mut body, segments.len() as u64);
                for seg in segments {
                    put_u64(&mut body, u64::from(seg.read_idx));
                    put_u64(&mut body, end_code(seg.end));
                    put_bytes(&mut body, &seg.seq);
                }
            }
        }
        body
    }

    /// Deserialize a frame body.
    pub fn decode(body: &[u8]) -> Result<Request, ServeError> {
        let mut c = Cursor::new(body);
        let req = match c.u64()? {
            REQ_PING => Request::Ping,
            REQ_INFO => Request::Info,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_MAP => {
                let n = c.usize()?;
                // Sized by what the body can actually hold, not the header.
                let mut segments = Vec::with_capacity(n.min(body.len() / 24 + 1));
                for _ in 0..n {
                    let read_idx = u32::try_from(c.u64()?)
                        .map_err(|_| ServeError::protocol("read_idx overflows u32"))?;
                    let end = decode_end(c.u64()?)?;
                    let seq = c.bytes()?.to_vec();
                    segments.push(QuerySegment { read_idx, end, seq });
                }
                Request::Map { segments }
            }
            other => return Err(ServeError::protocol(format!("unknown request tag {other}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialize to a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Response::Pong => put_u64(&mut body, RESP_PONG),
            Response::Busy => put_u64(&mut body, RESP_BUSY),
            Response::ShuttingDown => put_u64(&mut body, RESP_SHUTTING_DOWN),
            Response::Error(msg) => {
                put_u64(&mut body, RESP_ERROR);
                put_bytes(&mut body, msg.as_bytes());
            }
            Response::Mappings(mappings) => {
                put_u64(&mut body, RESP_MAPPINGS);
                put_u64(&mut body, mappings.len() as u64);
                for m in mappings {
                    put_u64(&mut body, u64::from(m.read_idx));
                    put_u64(&mut body, end_code(m.end));
                    put_u64(&mut body, u64::from(m.subject));
                    put_u64(&mut body, u64::from(m.hits));
                }
            }
            Response::Info(info) => {
                put_u64(&mut body, RESP_INFO);
                let c = &info.config;
                for v in [
                    c.k as u64,
                    c.w as u64,
                    c.trials as u64,
                    c.ell as u64,
                    c.seed,
                ] {
                    put_u64(&mut body, v);
                }
                let (tag, param): (u64, u64) = match info.scheme {
                    SketchScheme::Minimizer { w } => (0, w as u64),
                    SketchScheme::ClosedSyncmer { s } => (1, s as u64),
                };
                put_u64(&mut body, tag);
                put_u64(&mut body, param);
                put_u64(&mut body, info.shards as u64);
                put_u64(&mut body, info.batch as u64);
                put_u64(&mut body, info.subject_names.len() as u64);
                for name in &info.subject_names {
                    put_bytes(&mut body, name.as_bytes());
                }
            }
        }
        body
    }

    /// Deserialize a frame body.
    pub fn decode(body: &[u8]) -> Result<Response, ServeError> {
        let mut c = Cursor::new(body);
        let resp = match c.u64()? {
            RESP_PONG => Response::Pong,
            RESP_BUSY => Response::Busy,
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_ERROR => Response::Error(c.string()?),
            RESP_MAPPINGS => {
                let n = c.usize()?;
                let mut mappings = Vec::with_capacity(n.min(body.len() / 32 + 1));
                for _ in 0..n {
                    let read_idx = u32::try_from(c.u64()?)
                        .map_err(|_| ServeError::protocol("read_idx overflows u32"))?;
                    let end = decode_end(c.u64()?)?;
                    let subject = u32::try_from(c.u64()?)
                        .map_err(|_| ServeError::protocol("subject overflows u32"))?;
                    let hits = u32::try_from(c.u64()?)
                        .map_err(|_| ServeError::protocol("hits overflows u32"))?;
                    mappings.push(Mapping {
                        read_idx,
                        end,
                        subject,
                        hits,
                    });
                }
                Response::Mappings(mappings)
            }
            RESP_INFO => {
                let config = MapperConfig {
                    k: c.usize()?,
                    w: c.usize()?,
                    trials: c.usize()?,
                    ell: c.usize()?,
                    seed: c.u64()?,
                };
                let (tag, param) = (c.u64()?, c.usize()?);
                let scheme = match tag {
                    0 => SketchScheme::Minimizer { w: param },
                    1 => SketchScheme::ClosedSyncmer { s: param },
                    other => {
                        return Err(ServeError::protocol(format!("unknown scheme tag {other}")))
                    }
                };
                let shards = c.usize()?;
                let batch = c.usize()?;
                let n = c.usize()?;
                let mut subject_names = Vec::with_capacity(n.min(body.len() / 8 + 1));
                for _ in 0..n {
                    subject_names.push(c.string()?);
                }
                Response::Info(ServerInfo {
                    config,
                    scheme,
                    subject_names,
                    shards,
                    batch,
                })
            }
            other => {
                return Err(ServeError::protocol(format!(
                    "unknown response tag {other}"
                )))
            }
        };
        c.finish()?;
        Ok(resp)
    }
}

// --- frame transport ----------------------------------------------------

/// Write one frame (`MAGIC`, length, checksum, body) to `out`.
pub fn write_frame<W: Write>(out: &mut W, body: &[u8]) -> std::io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&(body.len() as u64).to_le_bytes())?;
    out.write_all(&fnv1a64(body).to_le_bytes())?;
    out.write_all(body)?;
    out.flush()
}

/// Read one frame from `input`, verifying magic, length bound and
/// checksum. Never panics on malformed input; never allocates more than
/// the peer actually sent (the declared length only bounds the read).
pub fn read_frame<R: Read>(input: &mut R) -> Result<Vec<u8>, ServeError> {
    let mut header = [0u8; 24];
    input.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(ServeError::protocol("bad frame magic"));
    }
    let body_len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let declared = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    if body_len > MAX_BODY {
        return Err(ServeError::protocol(format!(
            "frame body of {body_len} bytes exceeds the {MAX_BODY}-byte bound"
        )));
    }
    let mut body = Vec::new();
    input.take(body_len).read_to_end(&mut body)?;
    if body.len() as u64 != body_len {
        return Err(ServeError::protocol(format!(
            "frame truncated: header declares {body_len} body bytes, got {}",
            body.len()
        )));
    }
    let computed = fnv1a64(&body);
    if computed != declared {
        return Err(ServeError::protocol(format!(
            "frame checksum mismatch: declared {declared:#018x}, computed {computed:#018x}"
        )));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let body = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &resp.encode()).unwrap();
        let body = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Info);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Map {
            segments: vec![
                QuerySegment {
                    read_idx: 0,
                    end: ReadEnd::Prefix,
                    seq: b"ACGTACGT".to_vec(),
                },
                QuerySegment {
                    read_idx: 7,
                    end: ReadEnd::Suffix,
                    seq: Vec::new(),
                },
            ],
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Busy);
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::Error("queue exploded".into()));
        roundtrip_response(Response::Mappings(vec![Mapping {
            read_idx: 3,
            end: ReadEnd::Suffix,
            subject: 12,
            hits: 9,
        }]));
        roundtrip_response(Response::Info(ServerInfo {
            config: MapperConfig::default(),
            scheme: SketchScheme::ClosedSyncmer { s: 11 },
            subject_names: vec!["contig_0".into(), "contig_1".into()],
            shards: 8,
            batch: 16,
        }));
    }

    #[test]
    fn every_frame_byte_flip_detected() {
        let req = Request::Map {
            segments: vec![QuerySegment {
                read_idx: 1,
                end: ReadEnd::Prefix,
                seq: b"ACGT".to_vec(),
            }],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x01;
            // Either the frame read fails (magic/length/checksum) or — when
            // a length-word flip pushes the declared length past the bytes
            // present — it is a truncation error. Decode is never reached
            // with a corrupt body.
            assert!(
                read_frame(&mut bad.as_slice()).is_err(),
                "flip of byte {i} went undetected"
            );
        }
    }

    #[test]
    fn garbage_bytes_rejected() {
        assert!(read_frame(&mut &b"GET / HTTP/1.1\r\n\r\n this is not jem"[..]).is_err());
        assert!(read_frame(&mut &b""[..]).is_err());
        assert!(read_frame(&mut &b"JEMSRV1\0"[..]).is_err());
    }

    #[test]
    fn oversized_length_word_rejected_without_allocating() {
        let mut wire = MAGIC.to_vec();
        wire.extend_from_slice(&u64::MAX.to_le_bytes());
        wire.extend_from_slice(&0u64.to_le_bytes());
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bound"), "got: {err}");
    }

    #[test]
    fn unknown_tags_rejected() {
        let mut body = Vec::new();
        put_u64(&mut body, 999);
        assert!(Request::decode(&body).is_err());
        assert!(Response::decode(&body).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut body = Request::Ping.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
    }
}
