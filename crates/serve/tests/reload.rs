//! Hot-reload tests: `Request::Reload` swaps the served index atomically
//! under concurrent query load with zero dropped or incorrect responses,
//! a failed reload leaves the old index serving, and `Info` reflects the
//! current epoch.

use jem_core::{make_segments, save_index, JemMapper, MapperConfig, QuerySegment};
use jem_seq::SeqRecord;
use jem_serve::{Client, ServeError, ServerConfig, ShardedIndex};
use jem_sim::{
    contig_records, fragment_contigs, simulate_hifi, ContigProfile, Genome, HifiProfile,
};
use std::collections::HashSet;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

/// Two different worlds sharing one `ell`, so segments cut for one are
/// valid queries against either index.
fn worlds() -> (JemMapper, JemMapper, Vec<QuerySegment>) {
    let config = MapperConfig {
        ell: 400,
        trials: 8,
        ..MapperConfig::default()
    };
    let build = |genome_seed: u64| -> JemMapper {
        let genome = Genome::random(25_000, 0.5, genome_seed);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), genome_seed + 1);
        JemMapper::build(&contig_records(&contigs), &config)
    };
    let old = build(21);
    let new = build(91);
    let genome = Genome::random(25_000, 0.5, 21);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 1.0,
            ..Default::default()
        },
        23,
    );
    let read_recs: Vec<SeqRecord> = reads
        .iter()
        .map(|r| SeqRecord::new(r.id.clone(), r.seq.clone()))
        .collect();
    let segments = make_segments(&read_recs, config.ell);
    (old, new, segments)
}

fn persist(mapper: &JemMapper, name: &str) -> PathBuf {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let mut out = std::fs::File::create(&path).unwrap();
    save_index(&mut out, mapper).unwrap();
    path
}

#[test]
fn reload_swaps_epochs_with_zero_dropped_or_incorrect_responses() {
    let (old, new, segments) = worlds();
    assert!(segments.len() >= 2);
    let seg = segments[..2].to_vec();
    // The only two answers any request may ever see: the old index's or
    // the new index's — never a mix, an error, or a drop.
    let old_answer = {
        let mut m = old.map_segments(&seg);
        m.sort_unstable();
        m
    };
    let new_answer = {
        let mut m = new.map_segments(&seg);
        m.sort_unstable();
        m
    };
    let new_path = persist(&new, "reload-new.idx");

    let handle = jem_serve::start(
        ShardedIndex::new(old, 3),
        "127.0.0.1:0",
        &ServerConfig {
            workers: 2,
            queue_cap: 64,
            batch: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    // Concurrent query load across the swap: 4 threads × 12 requests.
    let load: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let seg = seg.clone();
            std::thread::spawn(move || {
                let client = Client::new(addr);
                (0..12)
                    .map(|_| {
                        let got = client
                            .map_segments_retry(&seg, 20, Duration::from_millis(5))
                            .expect("no request may be dropped across a reload");
                        std::thread::sleep(Duration::from_millis(2));
                        got
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    let summary = Client::new(addr.clone())
        .reload(new_path.display().to_string())
        .expect("reload of a valid index must succeed");
    assert!(summary.contains("epoch 1"), "got: {summary}");

    let mut seen = HashSet::new();
    for worker in load {
        for got in worker.join().unwrap() {
            assert!(
                got == old_answer || got == new_answer,
                "a response must match exactly one epoch's index"
            );
            seen.insert(got == new_answer);
        }
    }
    // The swap landed while load was running: answers from the new epoch
    // were observed (the old epoch may or may not appear, depending on
    // how fast the reload won the race — both are correct).
    assert!(seen.contains(&true), "post-reload answers must appear");

    // After the swap every answer comes from the new index.
    let settled = Client::new(addr)
        .map_segments(&seg)
        .expect("server must keep serving after a reload");
    assert_eq!(settled, new_answer);

    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("serve.reloads"), 1);
    assert_eq!(snapshot.counter("serve.reload_errors"), 0);
    assert_eq!(snapshot.counter("serve.reload_requests"), 1);
}

#[test]
fn failed_reload_keeps_the_old_index_serving() {
    let (old, _, segments) = worlds();
    let seg = segments[..1].to_vec();
    let expected = {
        let mut m = old.map_segments(&seg);
        m.sort_unstable();
        m
    };
    // A file that exists but is not an index: load fails checksum/magic
    // validation off the worker path.
    let junk = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("reload-junk.idx");
    std::fs::File::create(&junk)
        .unwrap()
        .write_all(b"this is not an index")
        .unwrap();

    let handle = jem_serve::start(
        ShardedIndex::new(old, 2),
        "127.0.0.1:0",
        &ServerConfig::default(),
    )
    .unwrap();
    let client = Client::new(handle.addr().to_string());

    for path in [junk.display().to_string(), "/no/such/file.idx".into()] {
        match client.reload(path) {
            Err(ServeError::Remote(msg)) => assert!(msg.contains("reload"), "got: {msg}"),
            other => panic!("expected a remote reload error, got {other:?}"),
        }
    }
    // The old epoch never stopped serving correct answers.
    assert_eq!(client.map_segments(&seg).unwrap(), expected);
    let info = client.info().unwrap();
    assert!(!info.subject_names.is_empty());

    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("serve.reloads"), 0);
    assert_eq!(snapshot.counter("serve.reload_errors"), 2);
}

#[test]
fn corrupt_v4_reload_is_rejected_and_keeps_the_old_index_serving() {
    let (old, new, segments) = worlds();
    let seg = segments[..1].to_vec();
    let expected = {
        let mut m = old.map_segments(&seg);
        m.sort_unstable();
        m
    };
    // Start from a pristine v4 artifact, then break it two ways: flip one
    // byte mid-file (posting arena / checksum mismatch) and truncate the
    // tail (section bounds mismatch). Both must fail validation *before*
    // the epoch swap with a typed error — never a panic, never a swap.
    let pristine = persist(&new, "reload-pristine-v4.idx");
    let bytes = std::fs::read(&pristine).unwrap();
    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let corrupt = tmp.join("reload-corrupt-v4.idx");
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xff;
    std::fs::write(&corrupt, &flipped).unwrap();
    let truncated = tmp.join("reload-truncated-v4.idx");
    std::fs::write(&truncated, &bytes[..bytes.len() - 9]).unwrap();

    let handle = jem_serve::start(
        ShardedIndex::new(old, 2),
        "127.0.0.1:0",
        &ServerConfig::default(),
    )
    .unwrap();
    let client = Client::new(handle.addr().to_string());

    for path in [&corrupt, &truncated] {
        match client.reload(path.display().to_string()) {
            Err(ServeError::Remote(msg)) => assert!(msg.contains("reload"), "got: {msg}"),
            other => panic!("expected a remote reload error, got {other:?}"),
        }
    }
    // The old epoch never stopped serving correct answers, and the good
    // artifact still reloads cleanly afterwards.
    assert_eq!(client.map_segments(&seg).unwrap(), expected);
    client
        .reload(pristine.display().to_string())
        .expect("the pristine v4 artifact must still reload");

    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("serve.reloads"), 1);
    assert_eq!(snapshot.counter("serve.reload_errors"), 2);
}

#[test]
fn info_reflects_the_current_epoch() {
    let (old, new, _) = worlds();
    let old_names = old.subject_names().to_vec();
    let new_names = new.subject_names().to_vec();
    let new_path = persist(&new, "reload-info.idx");

    let handle = jem_serve::start(
        ShardedIndex::new(old, 5),
        "127.0.0.1:0",
        &ServerConfig::default(),
    )
    .unwrap();
    let client = Client::new(handle.addr().to_string());
    assert_eq!(client.info().unwrap().subject_names, old_names);
    client.reload(new_path.display().to_string()).unwrap();
    let info = client.info().unwrap();
    assert_eq!(info.subject_names, new_names);
    assert_eq!(info.shards, 5, "reloads keep the configured shard count");
    handle.shutdown();
}
