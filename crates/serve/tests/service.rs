//! Service-lifecycle tests: graceful shutdown drains in-flight requests,
//! saturation sheds load with `Busy` and recovers, malformed frames are
//! answered (not crashed on), and the final metrics snapshot is valid.

use jem_core::{make_segments, JemMapper, MapperConfig, QuerySegment};
use jem_seq::SeqRecord;
use jem_serve::{
    write_frame, Client, Request, Response, ServeError, ServerConfig, ShardedIndex, MAGIC,
};
use jem_sim::{
    contig_records, fragment_contigs, simulate_hifi, ContigProfile, Genome, HifiProfile,
};
use std::io::{Read, Write};
use std::time::Duration;

fn world() -> (JemMapper, Vec<QuerySegment>) {
    let genome = Genome::random(30_000, 0.5, 21);
    let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 22);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 1.0,
            ..Default::default()
        },
        23,
    );
    let config = MapperConfig {
        ell: 400,
        trials: 8,
        ..MapperConfig::default()
    };
    let mapper = JemMapper::build(&contig_records(&contigs), &config);
    let read_recs: Vec<SeqRecord> = reads
        .iter()
        .map(|r| SeqRecord::new(r.id.clone(), r.seq.clone()))
        .collect();
    let segments = make_segments(&read_recs, config.ell);
    (mapper, segments)
}

fn start(mapper: JemMapper, config: &ServerConfig) -> jem_serve::ServerHandle {
    jem_serve::start(ShardedIndex::new(mapper, 2), "127.0.0.1:0", config).unwrap()
}

#[test]
fn ping_and_remote_shutdown() {
    let (mapper, _) = world();
    let handle = start(mapper, &ServerConfig::default());
    let client = Client::new(handle.addr().to_string());
    client.ping().unwrap();
    client.shutdown_server().unwrap();
    let snapshot = handle.join();
    assert_eq!(snapshot.counter("serve.shutdown_requests"), 1);
    // The listener is gone: a fresh ping cannot reach the server anymore.
    let late = Client::new(client.addr().to_string())
        .with_timeout(Duration::from_millis(300))
        .ping();
    assert!(late.is_err(), "server must be unreachable after shutdown");
}

#[test]
fn graceful_shutdown_answers_every_admitted_request() {
    let (mapper, segments) = world();
    assert!(segments.len() >= 4, "need enough segments to queue");
    let expected = {
        let mut m = mapper.map_segments(&segments[..1]);
        m.sort_unstable();
        m
    };
    // One deliberately slow worker so requests pile up in the queue and
    // are still in flight when shutdown lands.
    let handle = start(
        mapper,
        &ServerConfig {
            workers: 1,
            queue_cap: 32,
            batch: 1,
            straggle_ms: 40,
            ..Default::default()
        },
    );
    let addr = handle.addr().to_string();
    const N: usize = 6;
    let clients: Vec<_> = (0..N)
        .map(|_| {
            let addr = addr.clone();
            let seg = segments[..1].to_vec();
            std::thread::spawn(move || Client::new(addr).map_segments(&seg))
        })
        .collect();
    // Admission is observable: every successful enqueue samples the
    // queue-depth histogram, so wait until all N map requests are in.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let depth_samples = handle
            .recorder()
            .snapshot()
            .histograms
            .get("serve.queue_depth")
            .map_or(0, |h| h.count);
        if depth_samples >= N as u64 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "requests never reached the queue"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let snapshot = handle.shutdown();
    // Every admitted request was drained and answered with real mappings —
    // none dropped, none refused.
    for c in clients {
        let got = c.join().unwrap().expect("admitted request must complete");
        assert_eq!(got, expected);
    }
    assert_eq!(snapshot.counter("serve.requests"), N as u64);
    assert_eq!(snapshot.counter("serve.busy"), 0);
    // The shutdown snapshot is a valid, self-consistent jem-obs snapshot.
    assert!(snapshot.to_json().starts_with('{'));
    assert_eq!(
        snapshot.histograms["serve.queue_depth"].count,
        snapshot.counter("serve.requests"),
        "one depth sample per admitted request"
    );
    assert_eq!(snapshot.spans["serve/request"].count, N as u64);
    assert!(snapshot.counter("serve.collisions_probed") > 0);
}

#[test]
fn saturation_sheds_load_with_busy_and_recovers() {
    let (mapper, segments) = world();
    // Tiny queue + one straggling worker: concurrent requests must
    // overflow the queue and be refused with `Busy`, not buffered.
    let handle = start(
        mapper,
        &ServerConfig {
            workers: 1,
            queue_cap: 1,
            batch: 1,
            straggle_ms: 120,
            ..Default::default()
        },
    );
    let addr = handle.addr().to_string();
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let seg = segments[..1].to_vec();
            // No retry: a Busy reply must surface as ServeError::Busy.
            std::thread::spawn(move || Client::new(addr).map_segments(&seg))
        })
        .collect();
    let mut ok = 0usize;
    let mut busy = 0usize;
    for c in clients {
        match c.join().unwrap() {
            Ok(mappings) => {
                assert!(!mappings.is_empty());
                ok += 1;
            }
            Err(ServeError::Busy) => busy += 1,
            Err(other) => panic!("unexpected failure under saturation: {other}"),
        }
    }
    assert!(busy >= 1, "a full queue must refuse at least one request");
    assert!(ok >= 1, "admitted requests still complete");
    // The server remains fully responsive after shedding load.
    let client = Client::new(addr);
    client.ping().unwrap();
    let after = client
        .map_segments_retry(&segments[..1], 20, Duration::from_millis(50))
        .unwrap();
    assert!(!after.is_empty());
    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("serve.busy"), busy as u64);
    assert_eq!(snapshot.counter("serve.requests"), ok as u64 + 1);
}

#[test]
fn malformed_frames_get_an_error_reply_and_the_server_lives() {
    let (mapper, _) = world();
    let handle = start(mapper, &ServerConfig::default());
    let addr = handle.addr();

    // Not even a frame: HTTP-ish garbage.
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    conn.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = Vec::new();
    conn.read_to_end(&mut reply).unwrap();
    assert_eq!(&reply[..8], MAGIC, "the error reply is itself a frame");

    // A well-formed frame whose body is not a valid request.
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    write_frame(&mut conn, &999u64.to_le_bytes()).unwrap();
    let body = jem_serve::read_frame(&mut conn).unwrap();
    match Response::decode(&body).unwrap() {
        Response::Error(msg) => assert!(msg.contains("unknown request tag"), "got: {msg}"),
        other => panic!("expected Error, got {other:?}"),
    }

    // A frame with a corrupted checksum.
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    let mut wire = Vec::new();
    write_frame(&mut wire, &Request::Ping.encode()).unwrap();
    let last = wire.len() - 1;
    wire[last] ^= 0xFF;
    conn.write_all(&wire).unwrap();
    let body = jem_serve::read_frame(&mut conn).unwrap();
    assert!(matches!(
        Response::decode(&body).unwrap(),
        Response::Error(_)
    ));

    // After all that abuse the server still answers cleanly.
    let client = Client::new(addr.to_string());
    client.ping().unwrap();
    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("serve.protocol_errors"), 3);
}

#[test]
fn panicking_worker_is_respawned_and_pool_serves_on() {
    let (mapper, segments) = world();
    let expected = {
        let mut m = mapper.map_segments(&segments[..1]);
        m.sort_unstable();
        m
    };
    // One worker, one job per pass, and a panic injected on every second
    // index pass: request 2 must fail with a typed error (not a hang), and
    // request 3 proves the supervisor respawned the worker.
    let handle = start(
        mapper,
        &ServerConfig {
            workers: 1,
            batch: 1,
            panic_every: 2,
            ..Default::default()
        },
    );
    let client = Client::new(handle.addr().to_string());
    assert_eq!(client.map_segments(&segments[..1]).unwrap(), expected);
    match client.map_segments(&segments[..1]) {
        Err(ServeError::Remote(msg)) => {
            assert!(msg.contains("panicked"), "got: {msg}")
        }
        other => panic!("expected a typed panic reply, got {other:?}"),
    }
    assert_eq!(
        client.map_segments(&segments[..1]).unwrap(),
        expected,
        "the respawned worker must serve the next batch"
    );
    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("serve.worker_panic"), 1);
    assert_eq!(snapshot.counter("serve.worker_respawns"), 1);
    assert_eq!(snapshot.counter("serve.panic_failed_requests"), 1);
    // Pool capacity was restored: every configured worker slot drained the
    // shutdown cleanly, including the replacement.
    assert_eq!(
        snapshot.counter("serve.worker_clean_exits"),
        snapshot.counter("serve.workers_configured"),
    );
}

#[test]
fn expired_deadline_is_shed_while_a_generous_one_is_served() {
    let (mapper, segments) = world();
    // One slow worker: a request that arrives while the worker is mid-pass
    // sits in the queue long enough for a 1 ms deadline to lapse.
    let handle = start(
        mapper,
        &ServerConfig {
            workers: 1,
            queue_cap: 8,
            batch: 1,
            straggle_ms: 150,
            ..Default::default()
        },
    );
    let addr = handle.addr().to_string();
    let occupier = {
        let addr = addr.clone();
        let seg = segments[..1].to_vec();
        std::thread::spawn(move || Client::new(addr).map_segments(&seg))
    };
    // Give the occupier time to reach the worker, then race the deadline.
    std::thread::sleep(Duration::from_millis(40));
    let doomed = Client::new(addr.clone())
        .with_deadline(Duration::from_millis(1))
        .map_segments(&segments[..1]);
    assert!(
        matches!(doomed, Err(ServeError::Expired)),
        "a deadline that lapses in the queue must surface as Expired, got {doomed:?}"
    );
    occupier.join().unwrap().unwrap();
    // A deadline the server can actually meet changes nothing.
    let relaxed = Client::new(addr)
        .with_deadline(Duration::from_secs(30))
        .map_segments(&segments[..1])
        .unwrap();
    assert!(!relaxed.is_empty());
    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("serve.shed"), 1);
    assert_eq!(snapshot.counter("serve.deadline_requests"), 2);
    assert_eq!(snapshot.counter("serve.requests"), 2, "shed ≠ served");
}

#[test]
fn v1_frames_still_get_served_and_answered_in_v1() {
    let (mapper, segments) = world();
    let expected = {
        let mut m = mapper.map_segments(&segments[..1]);
        m.sort_unstable();
        m
    };
    let handle = start(mapper, &ServerConfig::default());
    // Hand-rolled JEMSRV1 exchange, exactly what a pre-deadline client
    // emits: the revision bump must not strand old binaries.
    let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
    let req = Request::Map {
        segments: segments[..1].to_vec(),
        deadline_ms: None,
    };
    write_frame(&mut conn, &req.encode()).unwrap();
    let mut reply = Vec::new();
    conn.read_to_end(&mut reply).unwrap();
    assert_eq!(&reply[..8], MAGIC, "a V1 request gets a V1-framed answer");
    let mut cursor = &reply[..];
    let body = jem_serve::read_frame(&mut cursor).unwrap();
    match Response::decode(&body).unwrap() {
        Response::Mappings(got) => assert_eq!(got, expected),
        other => panic!("expected Mappings, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn zero_valued_config_is_rejected_not_deadlocked() {
    let (mapper, _) = world();
    for config in [
        ServerConfig {
            workers: 0,
            ..Default::default()
        },
        ServerConfig {
            queue_cap: 0,
            ..Default::default()
        },
        ServerConfig {
            batch: 0,
            ..Default::default()
        },
    ] {
        match jem_serve::start(ShardedIndex::new(mapper.clone(), 2), "127.0.0.1:0", &config) {
            Err(err) => assert!(matches!(err, ServeError::Config(_)), "got {err}"),
            Ok(_) => panic!("zero-valued config must be rejected"),
        }
    }
}
