//! Chaos suite: the serve-layer invariant under injected network faults
//! and worker panics.
//!
//! With the fault proxy running any seeded [`ChaosPlan`] *and* the server
//! panicking on every Nth index pass, every client call must terminate
//! with a typed [`ServeError`] or a byte-correct result — never a hang, a
//! panic, or a wrong mapping — and the worker pool must recover to full
//! configured capacity afterwards.
//!
//! CI's `chaos-smoke` job runs this suite with `JEM_CHAOS_SEED` fixed and
//! `JEM_CHAOS_METRICS` pointing at a snapshot path it uploads and asserts
//! on (`serve.worker_panic` > 0, clean exits == configured workers).

use jem_core::{make_segments, JemMapper, MapperConfig, QuerySegment};
use jem_seq::SeqRecord;
use jem_serve::{
    ChaosAction, ChaosPlan, ChaosProxy, Client, ServeError, ServerConfig, ShardedIndex,
};
use jem_sim::{
    contig_records, fragment_contigs, simulate_hifi, ContigProfile, Genome, HifiProfile,
};
use std::time::Duration;

fn world() -> (JemMapper, Vec<QuerySegment>) {
    let genome = Genome::random(30_000, 0.5, 21);
    let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 22);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 1.0,
            ..Default::default()
        },
        23,
    );
    let config = MapperConfig {
        ell: 400,
        trials: 8,
        ..MapperConfig::default()
    };
    let mapper = JemMapper::build(&contig_records(&contigs), &config);
    let read_recs: Vec<SeqRecord> = reads
        .iter()
        .map(|r| SeqRecord::new(r.id.clone(), r.seq.clone()))
        .collect();
    let segments = make_segments(&read_recs, config.ell);
    (mapper, segments)
}

/// The offline ground truth a served answer must be byte-identical to.
fn offline(mapper: &JemMapper, seg: &[QuerySegment]) -> Vec<jem_core::Mapping> {
    let mut m = mapper.map_segments(seg);
    m.sort_unstable();
    m
}

#[test]
fn chaos_invariant_under_seeded_plan_and_worker_panics() {
    let seed = std::env::var("JEM_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let (mapper, segments) = world();
    let seg = segments[..2].to_vec();
    let expected = offline(&mapper, &seg);

    const WORKERS: usize = 3;
    let handle = jem_serve::start(
        ShardedIndex::new(mapper, 2),
        "127.0.0.1:0",
        &ServerConfig {
            workers: WORKERS,
            queue_cap: 32,
            batch: 4,
            io_timeout: Duration::from_secs(5),
            // Every 4th index pass panics: supervision runs concurrently
            // with the network chaos, not in a separate pampered test.
            panic_every: 4,
            ..Default::default()
        },
    )
    .unwrap();

    let plan = ChaosPlan::random(seed, 24);
    eprintln!("chaos plan (seed {seed}): {plan}");
    let proxy = ChaosProxy::start(handle.addr(), plan).unwrap();
    let client = Client::new(proxy.addr().to_string()).with_timeout(Duration::from_secs(8));

    let mut correct = 0u64;
    let mut typed_failures = 0u64;
    for i in 0..48 {
        // The invariant: each call TERMINATES (the loop makes progress)
        // with either the byte-exact offline answer or a typed error.
        match client.map_segments(&seg) {
            Ok(got) => {
                assert_eq!(
                    got, expected,
                    "request {i}: a served answer must be correct"
                );
                correct += 1;
            }
            Err(
                ServeError::Io(_)
                | ServeError::Protocol(_)
                | ServeError::Busy
                | ServeError::Expired
                | ServeError::ShuttingDown
                | ServeError::Remote(_),
            ) => typed_failures += 1,
            Err(other) => panic!("request {i}: non-typed failure {other:?}"),
        }
    }
    assert!(proxy.faults_injected() > 0, "the plan must actually injure");
    assert!(correct > 0, "some traffic must survive the chaos");
    assert!(
        typed_failures > 0,
        "a 24-action random plan must cause failures"
    );
    proxy.stop();

    // Recovery: with the proxy gone, the server answers directly,
    // correctly, and at full pool capacity. Panic injection is still on
    // (every 4th pass), so allow a retry in case this request lands on
    // an injected pass — consecutive passes can't both panic.
    let direct = Client::new(handle.addr().to_string());
    direct
        .ping()
        .expect("server must be alive after the chaos run");
    let recovered = (0..3)
        .find_map(|_| direct.map_segments(&seg).ok())
        .expect("a respawned pool must serve within a few index passes");
    assert_eq!(recovered, expected);

    let snapshot = handle.shutdown();
    assert!(
        snapshot.counter("serve.worker_panic") > 0,
        "panic_every=4 must have fired during the run"
    );
    assert_eq!(
        snapshot.counter("serve.worker_respawns"),
        snapshot.counter("serve.worker_panic"),
        "every panic must be answered with a respawn"
    );
    assert_eq!(
        snapshot.counter("serve.worker_clean_exits"),
        WORKERS as u64,
        "pool capacity must be fully restored before shutdown"
    );
    assert_eq!(snapshot.counter("serve.workers_configured"), WORKERS as u64);

    // CI uploads the shutdown snapshot as the chaos-smoke artifact.
    if let Ok(path) = std::env::var("JEM_CHAOS_METRICS") {
        std::fs::write(path, snapshot.to_json()).unwrap();
    }
}

#[test]
fn each_fault_kind_produces_its_documented_outcome() {
    let (mapper, segments) = world();
    let seg = segments[..1].to_vec();
    let expected = offline(&mapper, &seg);
    let handle = jem_serve::start(
        ShardedIndex::new(mapper, 2),
        "127.0.0.1:0",
        &ServerConfig::default(),
    )
    .unwrap();

    // One singleton-plan proxy per fault kind: behaviour stays attributable.
    let cases: Vec<(ChaosAction, &str)> = vec![
        (ChaosAction::Pass, "ok"),
        (ChaosAction::Delay { ms: 15 }, "ok"),
        (ChaosAction::Drop, "io"),
        (ChaosAction::Truncate { bytes: 10 }, "io"),
        (ChaosAction::Truncate { bytes: 30 }, "io"),
        (ChaosAction::Corrupt { bit: 3 }, "remote"), // magic damage
        (ChaosAction::Corrupt { bit: 140 }, "remote"), // checksum damage
        (ChaosAction::Slam, "io"),
    ];
    for (action, want) in cases {
        let proxy = ChaosProxy::start(handle.addr(), ChaosPlan::none().then(action)).unwrap();
        let client = Client::new(proxy.addr().to_string()).with_timeout(Duration::from_secs(8));
        let got = client.map_segments(&seg);
        match want {
            "ok" => assert_eq!(
                got.unwrap(),
                expected,
                "{action:?} must relay a correct answer"
            ),
            "io" => assert!(
                matches!(got, Err(ServeError::Io(_))),
                "{action:?} must surface as a connection error, got {got:?}"
            ),
            "remote" => match got {
                Err(ServeError::Remote(_) | ServeError::Protocol(_)) => {}
                other => panic!("{action:?} must surface a typed server rejection, got {other:?}"),
            },
            _ => unreachable!(),
        }
        proxy.stop();
    }

    // None of that abuse hurt the server.
    let direct = Client::new(handle.addr().to_string());
    assert_eq!(direct.map_segments(&seg).unwrap(), expected);
    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("serve.worker_panic"), 0);
    assert!(
        snapshot.counter("serve.protocol_errors") >= 2,
        "corrupt frames were rejected"
    );
}
