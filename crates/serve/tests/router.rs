//! Router-tier equivalence and failure semantics.
//!
//! The contract under test (DESIGN.md §13): a query routed across any
//! exact-cover topology of `jem serve --slots` shards renders
//! **byte-identical** TSV to the offline single-process path; a query
//! with shards missing either fails with a typed error naming the gaps
//! (strict `Map`) or answers `Degraded` carrying exactly the survivors'
//! merge plus the missing ids (`MapDegraded`); a flapping shard is gated
//! by its circuit breaker and rejoins without a router restart; and a
//! straggling shard is hedged to its replica.

// Topologies here really are lists of slot *ranges*, including
// single-shard ones — not ranges meant to be expanded into elements.
#![allow(clippy::single_range_in_vec_init)]

use jem_core::{
    make_segments, write_mappings_tsv, write_mappings_tsv_named, JemMapper, MapperConfig,
    QuerySegment,
};
use jem_seq::SeqRecord;
use jem_serve::{
    merge_partials, start_router, ChaosAction, ChaosPlan, ChaosProxy, Client, RetryPolicy,
    RouterConfig, SegmentPartials, ServeError, ServerConfig, ServerHandle, ShardRegistry,
    ShardSpec, ShardedIndex,
};
use jem_sim::{
    contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
    HifiProfile,
};
use std::ops::Range;
use std::time::Duration;

fn world() -> (JemMapper, Vec<SeqRecord>) {
    let genome = Genome::random(60_000, 0.5, 31);
    let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 32);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 2.0,
            ..Default::default()
        },
        33,
    );
    let config = MapperConfig {
        ell: 500,
        trials: 12,
        ..MapperConfig::default()
    };
    let mapper = JemMapper::build(&contig_records(&contigs), &config);
    (mapper, read_records(&reads))
}

/// The offline reference TSV (exactly what `jem map` produces).
fn offline_tsv(mapper: &JemMapper, reads: &[SeqRecord]) -> Vec<u8> {
    let mappings = mapper.map_reads(reads);
    let mut out = Vec::new();
    write_mappings_tsv(&mut out, &mappings, reads, mapper).unwrap();
    out
}

/// The routed TSV: chunked client round-trips against the router address
/// plus `Info`-derived rendering (exactly what `jem query --via-router`
/// produces for a healthy topology).
fn routed_tsv(addr: &str, reads: &[SeqRecord], chunk: usize) -> Vec<u8> {
    let client = Client::new(addr);
    let info = client.info().unwrap();
    let segments = make_segments(reads, info.config.ell);
    let mut mappings = Vec::new();
    for part in segments.chunks(chunk) {
        mappings.extend(
            client
                .map_segments_retry(part, 10, Duration::from_millis(20))
                .unwrap(),
        );
    }
    mappings.sort_unstable();
    let mut out = Vec::new();
    write_mappings_tsv_named(
        &mut out,
        &mappings,
        reads,
        &info.subject_names,
        info.config.trials,
    )
    .unwrap();
    out
}

fn offline_mappings(mapper: &JemMapper, seg: &[QuerySegment]) -> Vec<jem_core::Mapping> {
    let mut m = mapper.map_segments(seg);
    m.sort_unstable();
    m
}

/// Boot one `jem serve` process per slot range (each owning only its
/// slice of the `n_slots` space) and build the registry over them.
fn boot_shards(
    mapper: &JemMapper,
    n_slots: usize,
    ranges: &[Range<usize>],
) -> (Vec<ServerHandle>, ShardRegistry) {
    let handles: Vec<ServerHandle> = ranges
        .iter()
        .map(|r| {
            jem_serve::start(
                ShardedIndex::with_slots(mapper.clone(), n_slots, r.clone()),
                "127.0.0.1:0",
                &ServerConfig::default(),
            )
            .unwrap()
        })
        .collect();
    let specs = handles
        .iter()
        .zip(ranges)
        .map(|(h, r)| ShardSpec {
            slots: r.clone(),
            addr: h.addr().to_string(),
            replica: None,
        })
        .collect();
    let registry = ShardRegistry::new(n_slots, specs).unwrap();
    (handles, registry)
}

#[test]
fn routed_queries_render_byte_identical_to_offline_map() {
    let (mapper, reads) = world();
    let expected = offline_tsv(&mapper, &reads);
    assert!(
        expected.iter().filter(|&&b| b == b'\n').count() > 10,
        "world too small to be a meaningful equivalence check"
    );

    // One slot in one shard; an uneven two-shard split; three shards.
    let topologies: Vec<(usize, Vec<Range<usize>>)> = vec![
        (1, vec![0..1]),
        (4, vec![0..1, 1..4]),
        (5, vec![0..2, 2..4, 4..5]),
    ];
    for (n_slots, ranges) in topologies {
        let (handles, registry) = boot_shards(&mapper, n_slots, &ranges);
        let router = start_router(registry, "127.0.0.1:0", &RouterConfig::default()).unwrap();
        let got = routed_tsv(&router.addr().to_string(), &reads, 5);
        assert_eq!(
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&expected),
            "{n_slots} slots across {} shards must merge byte-identically to offline",
            ranges.len()
        );
        let report = router.shutdown();
        assert!(report.metrics.counter("router.full_answers") > 0);
        assert_eq!(
            report.metrics.counter("router.degraded"),
            0,
            "a healthy topology must never degrade"
        );
        for h in handles {
            h.shutdown();
        }
    }
}

#[test]
fn missing_shards_degrade_with_named_gaps_never_silently() {
    let (mapper, reads) = world();
    let segments = make_segments(&reads, mapper.config().ell);
    let seg = segments[..6].to_vec();
    let (mut handles, registry) = boot_shards(&mapper, 4, &[0..1, 1..2, 2..4]);
    let survivor_addrs = [handles[0].addr().to_string(), handles[2].addr().to_string()];
    // Kill shard 1; its slot range's collisions drop out of the merge.
    handles.remove(1).shutdown();

    let config = RouterConfig {
        hedge_after: None,
        ..RouterConfig::default()
    };
    let router = start_router(registry, "127.0.0.1:0", &config).unwrap();
    let client = Client::new(router.addr().to_string()).with_timeout(Duration::from_secs(5));

    // A strict Map fails whole, naming the gap.
    match client.map_segments(&seg) {
        Err(ServeError::Remote(msg)) => {
            assert!(msg.contains("[1]"), "the error must name shard 1: {msg}")
        }
        other => panic!("strict Map with a dead shard must fail typed, got {other:?}"),
    }

    // MapDegraded answers the survivors' merge and names the gap.
    let (mappings, missing) = client.map_segments_degraded(&seg).unwrap();
    assert_eq!(missing, vec![1], "exactly the dead shard must be named");
    let survivors: Vec<Vec<SegmentPartials>> = survivor_addrs
        .iter()
        .map(|a| Client::new(a.clone()).map_segments_partial(&seg).unwrap())
        .collect();
    let expected = merge_partials(&seg, &survivors).unwrap();
    assert_eq!(
        mappings, expected,
        "a degraded answer is exactly the merge of the surviving shards"
    );

    // With every shard dead there is nothing to stand an answer on: a
    // typed error, not an empty result dressed as a mapping.
    for h in handles {
        h.shutdown();
    }
    match client.map_segments_degraded(&seg) {
        Err(ServeError::Remote(msg)) => {
            assert!(msg.contains("unavailable"), "unexpected message: {msg}")
        }
        other => panic!("an all-dead topology must fail typed, got {other:?}"),
    }

    let report = router.shutdown();
    assert!(report.metrics.counter("router.degraded") >= 1);
    assert_eq!(report.metrics.counter("router.full_answers"), 0);
}

#[test]
fn breaker_gates_a_flapping_shard_and_recloses_on_probe() {
    let (mapper, reads) = world();
    let segments = make_segments(&reads, mapper.config().ell);
    let seg = segments[..2].to_vec();
    let expected = offline_mappings(&mapper, &seg);
    let (handles, _) = boot_shards(&mapper, 1, &[0..1]);

    // The shard flaps through a fault proxy: four dropped connections,
    // then it heals. (Each failed fetch burns up to two connections — the
    // primary dial plus the client's single transparent reconnect.)
    let mut plan = ChaosPlan::none();
    for _ in 0..4 {
        plan = plan.then(ChaosAction::Drop);
    }
    for _ in 0..20 {
        plan = plan.then(ChaosAction::Pass);
    }
    let proxy = ChaosProxy::start(handles[0].addr(), plan).unwrap();
    let registry = ShardRegistry::new(
        1,
        vec![ShardSpec {
            slots: 0..1,
            addr: proxy.addr().to_string(),
            replica: None,
        }],
    )
    .unwrap();
    let config = RouterConfig {
        hedge_after: None,
        breaker_failures: 2,
        breaker_cooldown: RetryPolicy::new(4, Duration::from_millis(25))
            .with_cap(Duration::from_millis(50)),
        io_timeout: Duration::from_secs(5),
        deadline: None,
        ..RouterConfig::default()
    };
    let router = start_router(registry, "127.0.0.1:0", &config).unwrap();
    let client = Client::new(router.addr().to_string()).with_timeout(Duration::from_secs(10));

    // Fail queries until the breaker opens: an open breaker skips the
    // shard without dialing it at all.
    let mut failing_queries = 0;
    loop {
        let before = proxy.connections();
        assert!(
            client.map_segments(&seg).is_err(),
            "the drop phase must fail strict queries"
        );
        failing_queries += 1;
        if proxy.connections() == before {
            break; // breaker-skipped: not a single connection burned
        }
        assert!(
            failing_queries < 6,
            "the breaker must open within a few failing queries"
        );
    }

    // Past the cooldown a half-open probe goes through, lands on the
    // healed shard, and closes the breaker — same process, no restart.
    let mut recovered = None;
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(120));
        if let Ok(m) = client.map_segments(&seg) {
            recovered = Some(m);
            break;
        }
    }
    let got = recovered.expect("a healed shard must be readmitted after the cooldown");
    assert_eq!(got, expected, "the readmitted shard must answer correctly");

    let report = router.shutdown();
    let m = &report.metrics;
    assert!(
        m.counter("router.breaker_open") >= 1,
        "breaker never opened"
    );
    assert!(
        m.counter("router.breaker_skips") >= 1,
        "open breaker never gated"
    );
    assert!(
        m.counter("router.breaker_close") >= 1,
        "breaker never reclosed"
    );
    assert!(m.counter("router.full_answers") >= 1);
    proxy.stop();
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn stragglers_are_hedged_to_the_replica() {
    let (mapper, reads) = world();
    let segments = make_segments(&reads, mapper.config().ell);
    let seg = segments[..2].to_vec();
    let expected = offline_mappings(&mapper, &seg);
    let (handles, _) = boot_shards(&mapper, 1, &[0..1]);
    let shard_addr = handles[0].addr();

    // The primary path straggles behind a 400 ms delay proxy; the replica
    // is the same shard reached directly. The hedge fires on silence at
    // 40 ms and its answer wins the race.
    let proxy = ChaosProxy::start(
        shard_addr,
        ChaosPlan::none().then(ChaosAction::Delay { ms: 400 }),
    )
    .unwrap();
    let registry = ShardRegistry::new(
        1,
        vec![ShardSpec {
            slots: 0..1,
            addr: proxy.addr().to_string(),
            replica: Some(shard_addr.to_string()),
        }],
    )
    .unwrap();
    let config = RouterConfig {
        hedge_after: Some(Duration::from_millis(40)),
        io_timeout: Duration::from_secs(5),
        ..RouterConfig::default()
    };
    let router = start_router(registry, "127.0.0.1:0", &config).unwrap();
    let client = Client::new(router.addr().to_string()).with_timeout(Duration::from_secs(10));

    let got = client.map_segments(&seg).unwrap();
    assert_eq!(
        got, expected,
        "a hedged answer must still be the full answer"
    );

    let report = router.shutdown();
    assert!(
        report.metrics.counter("router.hedges") >= 1,
        "the straggler threshold must have fired"
    );
    assert!(
        report.metrics.counter("router.hedge_wins") >= 1,
        "the replica must beat a 400 ms straggler"
    );
    proxy.stop();
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn router_info_rewrites_the_slot_count_and_tiers_refuse_crossed_requests() {
    let (mapper, reads) = world();
    let segments = make_segments(&reads, mapper.config().ell);
    let seg = segments[..1].to_vec();
    let names = mapper.subject_names().to_vec();
    let (handles, registry) = boot_shards(&mapper, 3, &[0..1, 1..3]);
    let router = start_router(registry, "127.0.0.1:0", &RouterConfig::default()).unwrap();
    let rclient = Client::new(router.addr().to_string());

    // Info through the router reports the *global* slot space, not the
    // answering shard's ownership.
    let info = rclient.info().unwrap();
    assert_eq!(
        info.shards, 3,
        "router Info must report the global slot count"
    );
    assert_eq!(info.subject_names, names);

    // The tiers refuse each other's requests with a typed explanation.
    match rclient.map_segments_partial(&seg) {
        Err(ServeError::Remote(msg)) => assert!(msg.contains("shard-tier"), "{msg}"),
        other => panic!("the router must refuse MapPartial, got {other:?}"),
    }
    match rclient.reload("nope.jem") {
        Err(ServeError::Remote(msg)) => assert!(msg.contains("no index"), "{msg}"),
        other => panic!("the router must refuse Reload, got {other:?}"),
    }
    let sclient = Client::new(handles[0].addr().to_string());
    match sclient.map_segments_degraded(&seg) {
        Err(ServeError::Remote(msg)) => assert!(msg.contains("router"), "{msg}"),
        other => panic!("a shard server must refuse MapDegraded, got {other:?}"),
    }

    // Remote shutdown ends the run; the report renders the topology.
    rclient.shutdown_server().unwrap();
    let report = router.join();
    assert!(report.status.starts_with("# jem-router status"));
    assert!(report.status.contains("breaker=closed"));
    assert_eq!(report.metrics.counter("router.shutdown_requests"), 1);
    for h in handles {
        h.shutdown();
    }
}
