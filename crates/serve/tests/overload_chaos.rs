//! Overload chaos suite: the serving tier's behavior when clients are the
//! fault injector.
//!
//! The chaos suite proves the tier survives a hostile *network*; this one
//! proves it survives hostile *load*: greedy clients, half-open
//! connections, pipelined floods, and shard restarts under a live
//! connection pool. The invariant mirrors the chaos invariant — every
//! request terminates with a typed outcome, never a hang — plus the
//! overload-specific guarantees: a polite client's service holds while
//! greedy clients are throttled, and the router's pooled connections
//! recover to byte-identical answers after a shard restart.
//!
//! CI's `overload-smoke` job runs this suite with `JEM_OVERLOAD_METRICS`
//! and `JEM_OVERLOAD_ROUTER_METRICS` pointing at snapshot paths it
//! uploads and asserts on (`serve.throttled` > 0, `router.pool_hit` > 0).

use jem_core::{make_segments, JemMapper, MapperConfig, QuerySegment};
use jem_seq::SeqRecord;
use jem_serve::{
    read_frame_versioned, start_router, write_frame_versioned, Client, ProtocolVersion,
    QuotaConfig, Request, Response, RouterConfig, ServeError, ServerConfig, ShardRegistry,
    ShardSpec, ShardedIndex,
};
use jem_sim::{
    contig_records, fragment_contigs, simulate_hifi, ContigProfile, Genome, HifiProfile,
};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn world() -> (JemMapper, Vec<QuerySegment>) {
    let genome = Genome::random(30_000, 0.5, 51);
    let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 52);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 1.0,
            ..Default::default()
        },
        53,
    );
    let config = MapperConfig {
        ell: 400,
        trials: 8,
        ..MapperConfig::default()
    };
    let mapper = JemMapper::build(&contig_records(&contigs), &config);
    let read_recs: Vec<SeqRecord> = reads
        .iter()
        .map(|r| SeqRecord::new(r.id.clone(), r.seq.clone()))
        .collect();
    let segments = make_segments(&read_recs, config.ell);
    (mapper, segments)
}

fn offline(mapper: &JemMapper, seg: &[QuerySegment]) -> Vec<jem_core::Mapping> {
    let mut m = mapper.map_segments(seg);
    m.sort_unstable();
    m
}

/// N greedy clients hammer a quota-enforcing server while one polite
/// client keeps a modest pace. The polite client's requests must all
/// succeed byte-correct and on time; every greedy request must terminate
/// with a typed outcome — the correct answer, `Throttled` with a usable
/// retry hint, `Busy`, or `Expired` — never a hang or an untyped error.
#[test]
fn greedy_clients_throttle_while_the_polite_client_sails() {
    let (mapper, segments) = world();
    let seg = segments[..2].to_vec();
    let expected = offline(&mapper, &seg);
    let handle = jem_serve::start(
        ShardedIndex::new(mapper, 2),
        "127.0.0.1:0",
        &ServerConfig {
            io_timeout: Duration::from_secs(5),
            // ~20 two-segment requests per second per client, burst of 4.
            quota: QuotaConfig {
                rate: 40.0,
                burst: 8.0,
            },
            ..Default::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();

    const GREEDY: usize = 3;
    const GREEDY_REQUESTS: usize = 40;
    let outcomes = std::thread::scope(|scope| {
        let greedy_handles: Vec<_> = (0..GREEDY)
            .map(|g| {
                let addr = addr.clone();
                let seg = seg.clone();
                let expected = &expected;
                scope.spawn(move || {
                    let client = Client::new(addr)
                        .with_timeout(Duration::from_secs(5))
                        .with_client_id(format!("greedy-{g}"));
                    let (mut ok, mut throttled, mut shed) = (0u64, 0u64, 0u64);
                    for i in 0..GREEDY_REQUESTS {
                        match client.map_segments(&seg) {
                            Ok(got) => {
                                assert_eq!(got, *expected, "greedy-{g} request {i}");
                                ok += 1;
                            }
                            Err(ServeError::Throttled { retry_after }) => {
                                assert!(
                                    retry_after > Duration::ZERO,
                                    "a throttle must carry a usable retry hint"
                                );
                                throttled += 1;
                            }
                            Err(ServeError::Busy | ServeError::Expired) => shed += 1,
                            Err(other) => {
                                panic!("greedy-{g} request {i}: untyped outcome {other:?}")
                            }
                        }
                    }
                    (ok, throttled, shed)
                })
            })
            .collect();

        // The polite client stays inside its own bucket (~13 tokens/s
        // against a 40/s refill) and must never be punished for the
        // greedy clients' behavior: independent buckets, independent
        // queue lanes.
        let polite = {
            let addr = addr.clone();
            let seg = seg.clone();
            let expected = &expected;
            scope.spawn(move || {
                let client = Client::new(addr)
                    .with_timeout(Duration::from_secs(5))
                    .with_client_id("polite");
                let started = Instant::now();
                for i in 0..8 {
                    let got = client
                        .map_segments(&seg)
                        .unwrap_or_else(|e| panic!("polite request {i} must succeed: {e}"));
                    assert_eq!(got, *expected, "polite request {i} must be byte-correct");
                    std::thread::sleep(Duration::from_millis(150));
                }
                started.elapsed()
            })
        };

        let greedy: Vec<(u64, u64, u64)> = greedy_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        (greedy, polite.join().unwrap())
    });
    let (greedy, polite_elapsed) = outcomes;

    let total_throttled: u64 = greedy.iter().map(|(_, t, _)| t).sum();
    let total_ok: u64 = greedy.iter().map(|(ok, _, _)| ok).sum();
    assert!(
        total_throttled > 0,
        "greedy clients must see typed throttles, got {greedy:?}"
    );
    assert!(
        total_ok > 0,
        "the quota admits bursts — some greedy requests must succeed"
    );
    // 8 polite requests at a 150ms pace is ~1.2s of pure pacing; anything
    // wildly past that means the greedy load starved the polite lane.
    assert!(
        polite_elapsed < Duration::from_secs(10),
        "polite client took {polite_elapsed:?} — greedy load must not starve it"
    );

    let snapshot = handle.shutdown();
    assert!(snapshot.counter("serve.throttled") > 0);
    assert_eq!(
        snapshot.counter("serve.protocol_errors"),
        0,
        "overload must surface as typed responses, not protocol damage"
    );
    if let Ok(path) = std::env::var("JEM_OVERLOAD_METRICS") {
        std::fs::write(path, snapshot.to_json()).unwrap();
    }
}

/// The router's pooled shard connections survive a shard restart: answers
/// before, the pool reuses sockets; the shard restarts on the same
/// address; answers after are byte-identical, with the dead pooled socket
/// evicted rather than served.
#[test]
fn pooled_router_answers_identically_across_a_shard_restart() {
    let (mapper, segments) = world();
    let seg = segments[..2].to_vec();
    let expected = offline(&mapper, &seg);

    let boot = |owned: std::ops::Range<usize>| {
        jem_serve::start(
            ShardedIndex::with_slots(mapper.clone(), 2, owned),
            "127.0.0.1:0",
            &ServerConfig::default(),
        )
        .unwrap()
    };
    let shard0 = boot(0..1);
    let shard1 = boot(1..2);
    let shard1_addr = shard1.addr().to_string();
    let registry = ShardRegistry::new(
        2,
        vec![
            ShardSpec {
                slots: 0..1,
                addr: shard0.addr().to_string(),
                replica: None,
            },
            ShardSpec {
                slots: 1..2,
                addr: shard1_addr.clone(),
                replica: None,
            },
        ],
    )
    .unwrap();
    let config = RouterConfig {
        hedge_after: None, // keep the pool's traffic deterministic
        io_timeout: Duration::from_secs(5),
        ..RouterConfig::default()
    };
    let router = start_router(registry, "127.0.0.1:0", &config).unwrap();
    let client = Client::new(router.addr().to_string()).with_timeout(Duration::from_secs(10));

    // Two queries: the first opens the pooled connections, the second
    // must reuse them.
    for i in 0..2 {
        assert_eq!(client.map_segments(&seg).unwrap(), expected, "query {i}");
    }

    // Restart shard 1 on the same address. The router's pooled socket to
    // it is now dead metal.
    let snapshot = shard1.shutdown();
    assert!(snapshot.counter("serve.requests") > 0);
    let shard1 = jem_serve::start(
        ShardedIndex::with_slots(mapper.clone(), 2, 1..2),
        &shard1_addr,
        &ServerConfig::default(),
    )
    .expect("shard must rebind its old address after restart");

    // The answer must come back whole and byte-identical — the pool
    // detects the dead socket (health peek or one-retry-fresh) instead of
    // failing the query or, worse, serving through it.
    assert_eq!(
        client.map_segments(&seg).unwrap(),
        expected,
        "the post-restart answer must be byte-identical"
    );

    let report = router.shutdown();
    assert!(
        report.metrics.counter("router.pool_hit") > 0,
        "repeat queries must reuse pooled connections"
    );
    assert!(
        report.metrics.counter("router.pool_evict") > 0,
        "the restart's dead socket must be evicted"
    );
    assert_eq!(report.metrics.counter("router.full_answers"), 3);
    if let Ok(path) = std::env::var("JEM_OVERLOAD_ROUTER_METRICS") {
        std::fs::write(path, report.metrics.to_json()).unwrap();
    }
    drop(shard0);
    drop(shard1);
}

/// Half-open and slow-loris connections are reaped on the idle deadline
/// while honest traffic keeps flowing.
#[test]
fn slow_loris_connections_are_reaped_while_pings_keep_landing() {
    let (mapper, _) = world();
    let handle = jem_serve::start(
        ShardedIndex::new(mapper, 2),
        "127.0.0.1:0",
        &ServerConfig {
            idle_timeout: Duration::from_millis(200),
            io_timeout: Duration::from_millis(500),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    // Three connections that say nothing, and one that sends half a magic
    // then stalls mid-frame.
    let silent: Vec<TcpStream> = (0..3).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let mut staller = TcpStream::connect(addr).unwrap();
    std::io::Write::write_all(&mut staller, b"JEMS").unwrap();

    // While the lorises dangle, honest requests must still be served.
    let client = Client::new(addr.to_string()).with_timeout(Duration::from_secs(5));
    client.ping().expect("pings must land while lorises dangle");

    // Give the reaper its deadline (idle 200ms, mid-frame 500ms), then
    // confirm the server is still healthy and counted every reap.
    std::thread::sleep(Duration::from_millis(900));
    client.ping().expect("pings must land after the reaping");
    drop(silent);
    drop(staller);
    let snapshot = handle.shutdown();
    assert!(
        snapshot.counter("serve.reaped_idle") >= 4,
        "3 silent + 1 mid-frame stall must all be reaped, got {}",
        snapshot.counter("serve.reaped_idle")
    );
}

/// The wire protocol has no correlation id, so a pipelining v3 client
/// matches responses to requests positionally: the server must answer in
/// request order even when a cheap inline answer (`Pong`) completes while
/// an earlier mapping request is still straggling in a worker batch.
#[test]
fn pipelined_v3_responses_arrive_in_request_order() {
    let (mapper, segments) = world();
    let seg = segments[..1].to_vec();
    let handle = jem_serve::start(
        ShardedIndex::new(mapper, 2),
        "127.0.0.1:0",
        &ServerConfig {
            straggle_ms: 100, // hold the Map answers so the Pongs race them
            io_timeout: Duration::from_secs(5),
            ..Default::default()
        },
    )
    .unwrap();
    let tagged = |inner: Request| Request::Tagged {
        client_id: "orderer".into(),
        inner: Box::new(inner),
    };
    let map = tagged(Request::Map {
        segments: seg,
        deadline_ms: None,
    })
    .encode();
    let ping = tagged(Request::Ping).encode();
    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Map, Ping, Map, Ping back to back: without order restoration the
    // Pongs would land first (they are answered inline while the Maps
    // straggle) and the client would misattribute every answer.
    for body in [&map, &ping, &map, &ping] {
        write_frame_versioned(&mut conn, body, ProtocolVersion::V3).unwrap();
    }
    let mut kinds = Vec::new();
    for i in 0..4 {
        let (_, resp_body) = read_frame_versioned(&mut conn)
            .unwrap_or_else(|e| panic!("response {i} must arrive, not hang: {e}"));
        kinds.push(match Response::decode(&resp_body).unwrap() {
            Response::Mappings(_) => "mappings",
            Response::Pong => "pong",
            other => panic!("response {i}: unexpected {other:?}"),
        });
    }
    assert_eq!(
        kinds,
        ["mappings", "pong", "mappings", "pong"],
        "responses must come back in request order, not completion order"
    );
    drop(conn);
    handle.shutdown();
}

/// The router's front door is capped like the shard servers': past
/// `max_conns` live connections, new ones are answered typed `Busy` and
/// closed instead of pinning an unbounded number of handler threads, and
/// the idle reaper frees the flooded slots.
#[test]
fn router_connection_flood_past_the_cap_is_answered_busy() {
    let registry = ShardRegistry::parse("0-1@127.0.0.1:1").unwrap();
    let config = RouterConfig {
        max_conns: 2,
        idle_timeout: Duration::from_millis(300),
        io_timeout: Duration::from_secs(2),
        ..RouterConfig::default()
    };
    let router = start_router(registry, "127.0.0.1:0", &config).unwrap();
    let addr = router.addr().to_string();
    // Two slow-loris connections fill the cap.
    let lorises: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(router.addr()).unwrap())
        .collect();
    std::thread::sleep(Duration::from_millis(100)); // let the accept loop count them
    let client = Client::new(addr).with_timeout(Duration::from_secs(2));
    match client.ping() {
        Err(ServeError::Busy) => {}
        other => panic!("past the cap a connection must see typed Busy, got {other:?}"),
    }
    // The idle reaper retires the lorises (still held open, still silent),
    // freeing their slots for honest traffic.
    std::thread::sleep(Duration::from_millis(600));
    client
        .ping()
        .expect("after the reap the router must serve again");
    drop(lorises);
    let report = router.shutdown();
    assert!(report.metrics.counter("router.conn_rejected") >= 1);
    assert!(report.metrics.counter("router.reaped_idle") >= 2);
}

/// A v3 client pipelining past its per-connection in-flight cap gets
/// typed `Busy` for the excess — and answers for the admitted work — with
/// no protocol-level hang.
#[test]
fn pipelining_past_the_inflight_cap_is_shed_with_typed_busy() {
    let (mapper, segments) = world();
    let seg = segments[..1].to_vec();
    let handle = jem_serve::start(
        ShardedIndex::new(mapper, 2),
        "127.0.0.1:0",
        &ServerConfig {
            max_inflight: 1,
            straggle_ms: 150, // hold the admitted job so the pipeline races it
            io_timeout: Duration::from_secs(5),
            ..Default::default()
        },
    )
    .unwrap();

    let req = Request::Tagged {
        client_id: "pipeliner".into(),
        inner: Box::new(Request::Map {
            segments: seg,
            deadline_ms: None,
        }),
    };
    let body = req.encode();
    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Three requests back to back on one connection, nothing read yet:
    // the cap admits one, the rest must be answered Busy immediately.
    for _ in 0..3 {
        write_frame_versioned(&mut conn, &body, ProtocolVersion::V3).unwrap();
    }
    let (mut mappings, mut busy) = (0u64, 0u64);
    for i in 0..3 {
        let (_, resp_body) = read_frame_versioned(&mut conn)
            .unwrap_or_else(|e| panic!("response {i} must arrive, not hang: {e}"));
        match Response::decode(&resp_body).unwrap() {
            Response::Mappings(_) => mappings += 1,
            Response::Busy => busy += 1,
            other => panic!("response {i}: expected Mappings or Busy, got {other:?}"),
        }
    }
    drop(conn);
    let snapshot = handle.shutdown();
    assert!(busy >= 1, "the excess pipeline depth must be shed as Busy");
    assert!(mappings >= 1, "the admitted request must still be answered");
    assert_eq!(mappings + busy, 3);
    assert!(snapshot.counter("serve.inflight_rejected") >= 1);
}
