//! Server/offline equivalence: a batch of segments mapped through a
//! running server (full client round-trip) must render **byte-identical**
//! TSV to the offline `jem map` path against the same index.
//!
//! Two properties make this exact rather than approximate:
//! 1. shard partitioning cannot change any per-trial collision set (each
//!    `(trial, code)` entry lives in exactly one shard, and collision sets
//!    are deduplicated before counting), and
//! 2. `Mapping` carries a documented derived total order
//!    (`read_idx`, `end`, `subject`, `hits`), the sequential driver emits
//!    mappings already in that order, and the serve path sorts into it.

use jem_core::{
    make_segments, write_mappings_tsv, write_mappings_tsv_named, JemMapper, MapperConfig,
};
use jem_seq::SeqRecord;
use jem_serve::{Client, ServerConfig, ShardedIndex};
use jem_sim::{
    contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
    HifiProfile,
};

fn world() -> (JemMapper, Vec<SeqRecord>) {
    let genome = Genome::random(60_000, 0.5, 11);
    let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 12);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 2.0,
            ..Default::default()
        },
        13,
    );
    let config = MapperConfig {
        ell: 500,
        trials: 12,
        ..MapperConfig::default()
    };
    let mapper = JemMapper::build(&contig_records(&contigs), &config);
    (mapper, read_records(&reads))
}

/// The offline reference TSV: sequential `map_reads` + `write_mappings_tsv`
/// (exactly what `jem map` without `--parallel` produces).
fn offline_tsv(mapper: &JemMapper, reads: &[SeqRecord]) -> Vec<u8> {
    let mappings = mapper.map_reads(reads);
    // The documented total order: sequential output is already sorted, so
    // the server only has to sort to agree byte-for-byte.
    assert!(
        mappings.windows(2).all(|w| w[0] <= w[1]),
        "offline driver output must be in Mapping's total order"
    );
    let mut out = Vec::new();
    write_mappings_tsv(&mut out, &mappings, reads, mapper).unwrap();
    out
}

/// The served TSV: chunked client round-trips + `Info`-derived rendering
/// (exactly what `jem query` produces).
fn served_tsv(addr: &str, reads: &[SeqRecord], chunk: usize) -> Vec<u8> {
    let client = Client::new(addr);
    let info = client.info().unwrap();
    let segments = make_segments(reads, info.config.ell);
    let mut mappings = Vec::new();
    for part in segments.chunks(chunk) {
        mappings.extend(
            client
                .map_segments_retry(part, 10, std::time::Duration::from_millis(20))
                .unwrap(),
        );
    }
    mappings.sort_unstable();
    let mut out = Vec::new();
    write_mappings_tsv_named(
        &mut out,
        &mappings,
        reads,
        &info.subject_names,
        info.config.trials,
    )
    .unwrap();
    out
}

#[test]
fn served_batches_render_byte_identical_to_offline_map() {
    let (mapper, reads) = world();
    let expected = offline_tsv(&mapper, &reads);
    assert!(
        expected.iter().filter(|&&b| b == b'\n').count() > 10,
        "world too small to be a meaningful equivalence check"
    );

    for (shards, chunk) in [(1usize, 7usize), (5, 3), (16, 64)] {
        let handle = jem_serve::start(
            ShardedIndex::new(mapper.clone(), shards),
            "127.0.0.1:0",
            &ServerConfig::default(),
        )
        .unwrap();
        let got = served_tsv(&handle.addr().to_string(), &reads, chunk);
        assert_eq!(
            String::from_utf8_lossy(&got),
            String::from_utf8_lossy(&expected),
            "{shards} shards / chunk {chunk} must be byte-identical to offline"
        );
        handle.shutdown();
    }
}

#[test]
fn info_reports_the_served_index_faithfully() {
    let (mapper, _) = world();
    let config = *mapper.config();
    let names = mapper.subject_names().to_vec();
    let handle = jem_serve::start(
        ShardedIndex::new(mapper, 4),
        "127.0.0.1:0",
        &ServerConfig::default(),
    )
    .unwrap();
    let info = Client::new(handle.addr().to_string()).info().unwrap();
    assert_eq!(info.config, config);
    assert_eq!(info.subject_names, names);
    assert_eq!(info.shards, 4);
    handle.shutdown();
}

#[test]
fn concurrent_clients_each_get_their_own_answers() {
    // Interleaved requests from many clients must not cross-talk: each
    // round-trip returns exactly the mappings of its own segments (lazy
    // counter reuse across a worker's batches must not leak hits).
    let (mapper, reads) = world();
    let segments = make_segments(&reads, mapper.config().ell);
    let per_segment: Vec<_> = segments
        .iter()
        .map(|s| {
            let mut expected = mapper.map_segments(std::slice::from_ref(s));
            expected.sort_unstable();
            (s.clone(), expected)
        })
        .collect();
    let handle = jem_serve::start(
        ShardedIndex::new(mapper, 3),
        "127.0.0.1:0",
        &ServerConfig {
            workers: 4,
            batch: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = handle.addr().to_string();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let addr = addr.clone();
            let per_segment = per_segment.clone();
            std::thread::spawn(move || {
                let client = Client::new(addr);
                for (s, expected) in per_segment.iter().skip(t).step_by(4) {
                    let got = client
                        .map_segments_retry(
                            std::slice::from_ref(s),
                            10,
                            std::time::Duration::from_millis(20),
                        )
                        .unwrap();
                    assert_eq!(&got, expected, "cross-talk on read {}", s.read_idx);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
}
