//! Frame-decoder fuzzing: random mutations of valid `JEMSRV1`/`JEMSRV2`
//! frames must never panic the decoder and must never decode to a
//! *different* request than the one originally framed — a damaged frame
//! either errors or (for damage outside the framed bytes, e.g. trailing
//! junk) decodes identically. Raw byte soup must never panic either.
//!
//! Single-bit flips are the damage model for the aliasing property: the
//! two revision magics differ in two bits (`'1' = 0x31`, `'2' = 0x32`),
//! so no single flip can silently re-version a frame, and every in-frame
//! flip is caught by the magic check, the length check, or the FNV-1a
//! body checksum.

use jem_core::{QuerySegment, ReadEnd};
use jem_serve::{
    merge_partials, read_frame_versioned, validate_partials, write_frame_versioned,
    ProtocolVersion, Request, Response, SegmentPartials,
};
use proptest::prelude::*;

fn end_of(suffix: bool) -> ReadEnd {
    if suffix {
        ReadEnd::Suffix
    } else {
        ReadEnd::Prefix
    }
}

fn mk_segments(segs: Vec<(u32, bool, Vec<u8>)>) -> Vec<QuerySegment> {
    segs.into_iter()
        .map(|(read_idx, suffix, seq)| QuerySegment {
            read_idx,
            end: end_of(suffix),
            seq,
        })
        .collect()
}

/// Build one of the request shapes from fuzz parameters.
fn build_request(
    kind: u8,
    deadline: u64,
    segs: Vec<(u32, bool, Vec<u8>)>,
    path: String,
) -> Request {
    let deadline_ms = if deadline == 0 {
        None
    } else {
        Some(deadline.min(u64::MAX - 1))
    };
    match kind % 7 {
        0 => Request::Ping,
        1 => Request::Info,
        2 => Request::Shutdown,
        3 => Request::Reload { path },
        4 => Request::Map {
            segments: mk_segments(segs),
            deadline_ms,
        },
        5 => Request::MapPartial {
            segments: mk_segments(segs),
            deadline_ms,
        },
        _ => Request::MapDegraded {
            segments: mk_segments(segs),
            deadline_ms,
        },
    }
}

/// Frame `req` exactly as the client does.
fn frame(req: &Request) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame_versioned(&mut wire, &req.encode(), req.wire_version()).unwrap();
    wire
}

/// Decode a wire buffer end to end: transport frame, then request body.
fn decode(wire: &[u8]) -> Result<Request, jem_serve::ServeError> {
    let mut cursor = wire;
    let (version, body) = read_frame_versioned(&mut cursor)?;
    Request::decode_versioned(&body, version)
}

proptest! {
    #[test]
    fn bit_flips_never_panic_and_never_alias(
        kind in 0u8..7,
        deadline in 0u64..10_000,
        segs in prop::collection::vec(
            (0u32..1000, any::<bool>(), prop::collection::vec(0u8..=255, 0..40)),
            0..4,
        ),
        path in "[a-z/.]{0,24}",
        bit in 0usize..4096,
    ) {
        let req = build_request(kind, deadline, segs, path);
        let wire = frame(&req);
        let mut damaged = wire.clone();
        let bit = bit % (damaged.len() * 8);
        damaged[bit / 8] ^= 1 << (bit % 8);
        // Must not panic; if it decodes at all, it must be the original.
        if let Ok(got) = decode(&damaged) {
            prop_assert_eq!(got, req, "a bit flip decoded to a different request");
        }
        // The pristine frame still round-trips (the damage copy is separate).
        prop_assert_eq!(decode(&wire).unwrap(), req);
    }

    #[test]
    fn truncation_never_panics_and_never_aliases(
        kind in 0u8..7,
        deadline in 0u64..10_000,
        segs in prop::collection::vec(
            (0u32..1000, any::<bool>(), prop::collection::vec(0u8..=255, 0..40)),
            0..4,
        ),
        path in "[a-z/.]{0,24}",
        cut in 0usize..4096,
    ) {
        let req = build_request(kind, deadline, segs, path);
        let mut wire = frame(&req);
        let cut = cut % wire.len(); // strictly shorter than the frame
        wire.truncate(cut);
        prop_assert!(
            decode(&wire).is_err(),
            "a truncated frame must never decode (cut at {})", cut
        );
    }

    #[test]
    fn trailing_junk_is_invisible_to_the_frame_reader(
        kind in 0u8..7,
        deadline in 0u64..10_000,
        segs in prop::collection::vec(
            (0u32..1000, any::<bool>(), prop::collection::vec(0u8..=255, 0..40)),
            0..4,
        ),
        path in "[a-z/.]{0,24}",
        junk in prop::collection::vec(0u8..=255, 1..64),
    ) {
        // The transport is length-prefixed: bytes after the frame belong
        // to no one and must not change what the frame decodes to.
        let req = build_request(kind, deadline, segs, path);
        let mut wire = frame(&req);
        wire.extend_from_slice(&junk);
        prop_assert_eq!(decode(&wire).unwrap(), req);
    }

    #[test]
    fn byte_soup_never_panics(
        soup in prop::collection::vec(0u8..=255, 0..256),
    ) {
        // Transport layer on raw bytes.
        let mut cursor = soup.as_slice();
        let _ = read_frame_versioned(&mut cursor);
        // Body decoders on raw bytes, all revisions.
        let _ = Request::decode_versioned(&soup, ProtocolVersion::V1);
        let _ = Request::decode_versioned(&soup, ProtocolVersion::V2);
        let _ = Response::decode(&soup);
    }

    #[test]
    fn cross_version_body_decode_never_panics(
        kind in 0u8..7,
        deadline in 0u64..10_000,
        segs in prop::collection::vec(
            (0u32..1000, any::<bool>(), prop::collection::vec(0u8..=255, 0..40)),
            0..4,
        ),
        path in "[a-z/.]{0,24}",
    ) {
        // Feeding a body to the *wrong* revision's decoder models a peer
        // with a mismatched magic table: it may error, it may decode (the
        // revisions share deadline-free layouts by design), but it must
        // never panic — and a V2-only request must never sneak past V1.
        let req = build_request(kind, deadline, segs, path);
        let body = req.encode();
        let _ = Request::decode_versioned(&body, ProtocolVersion::V1);
        let _ = Request::decode_versioned(&body, ProtocolVersion::V2);
        if matches!(
            req,
            Request::Reload { .. } | Request::MapPartial { .. } | Request::MapDegraded { .. }
        ) {
            prop_assert!(Request::decode_versioned(&body, ProtocolVersion::V1).is_err());
        }
    }

    #[test]
    fn damaged_partials_responses_never_panic_and_never_alias(
        segs in prop::collection::vec(
            (
                0u32..1000,
                any::<bool>(),
                prop::collection::vec(prop::collection::vec(0u32..50, 0..5), 0..4),
            ),
            0..4,
        ),
        bit in 0usize..4096,
        cut in 0usize..4096,
    ) {
        // The router's gather decodes `Partials` responses from shard
        // processes it does not control: a damaged response must error or
        // decode to exactly the original — never to different collision
        // sets that would alias into a merge.
        let partials: Vec<SegmentPartials> = segs
            .into_iter()
            .map(|(read_idx, suffix, trials)| SegmentPartials {
                read_idx,
                end: end_of(suffix),
                trials: trials
                    .into_iter()
                    .map(|mut t| {
                        t.sort_unstable();
                        t.dedup();
                        t
                    })
                    .collect(),
            })
            .collect();
        let resp = Response::Partials(partials);
        let mut wire = Vec::new();
        write_frame_versioned(&mut wire, &resp.encode(), resp.wire_version()).unwrap();

        let mut damaged = wire.clone();
        let bit = bit % (damaged.len() * 8);
        damaged[bit / 8] ^= 1 << (bit % 8);
        let mut cursor = damaged.as_slice();
        if let Ok((_, body)) = read_frame_versioned(&mut cursor) {
            if let Ok(got) = Response::decode(&body) {
                prop_assert_eq!(got, resp.clone(), "a bit flip decoded to a different response");
            }
        }

        let mut truncated = wire.clone();
        truncated.truncate(cut % wire.len());
        let mut cursor = truncated.as_slice();
        prop_assert!(
            read_frame_versioned(&mut cursor).is_err(),
            "a truncated shard response must never decode"
        );
    }

    #[test]
    fn merge_is_shard_order_and_duplication_independent(
        idents in prop::collection::vec((0u32..1000, any::<bool>()), 1..4),
        shard_trials in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u32..30, 0..6), 0..5),
            1..4,
        ),
        rot in 0usize..4,
    ) {
        // Set union is associative, commutative, and idempotent, so the
        // merged mappings cannot depend on shard order — and repeating a
        // shard's answer must change nothing.
        let segments: Vec<QuerySegment> = idents
            .iter()
            .map(|&(read_idx, suffix)| QuerySegment {
                read_idx,
                end: end_of(suffix),
                seq: Vec::new(),
            })
            .collect();
        let shards: Vec<Vec<SegmentPartials>> = shard_trials
            .iter()
            .map(|per_seg| {
                idents
                    .iter()
                    .enumerate()
                    .map(|(j, &(read_idx, suffix))| SegmentPartials {
                        read_idx,
                        end: end_of(suffix),
                        trials: per_seg
                            .get(j)
                            .cloned()
                            .unwrap_or_default()
                            .into_iter()
                            .map(|s| vec![s])
                            .collect(),
                    })
                    .collect()
            })
            .collect();
        let merged = merge_partials(&segments, &shards).unwrap();

        let mut rotated = shards.clone();
        rotated.rotate_left(rot % shards.len());
        prop_assert_eq!(merge_partials(&segments, &rotated).unwrap(), merged.clone());

        let mut reversed = shards.clone();
        reversed.reverse();
        prop_assert_eq!(merge_partials(&segments, &reversed).unwrap(), merged.clone());

        let mut duplicated = shards.clone();
        duplicated.push(shards[0].clone());
        prop_assert_eq!(merge_partials(&segments, &duplicated).unwrap(), merged);
    }

    #[test]
    fn mismatched_echoes_error_instead_of_aliasing(
        idents in prop::collection::vec((0u32..1000, any::<bool>()), 1..4),
        which in 0usize..4,
        bump in 1u32..5,
    ) {
        // A shard (or a fault injector) echoing the wrong segment identity
        // must be refused by validation, never silently merged.
        let segments: Vec<QuerySegment> = idents
            .iter()
            .map(|&(read_idx, suffix)| QuerySegment {
                read_idx,
                end: end_of(suffix),
                seq: Vec::new(),
            })
            .collect();
        let shard: Vec<SegmentPartials> = idents
            .iter()
            .map(|&(read_idx, suffix)| SegmentPartials {
                read_idx,
                end: end_of(suffix),
                trials: vec![vec![read_idx % 7]],
            })
            .collect();
        prop_assert!(validate_partials(&segments, &shard).is_ok());
        prop_assert!(merge_partials(&segments, std::slice::from_ref(&shard)).is_ok());

        let j = which % shard.len();
        let mut wrong_read = shard.clone();
        wrong_read[j].read_idx = wrong_read[j].read_idx.wrapping_add(bump);
        prop_assert!(validate_partials(&segments, &wrong_read).is_err());
        prop_assert!(merge_partials(&segments, &[wrong_read]).is_err());

        let mut wrong_end = shard.clone();
        wrong_end[j].end = end_of(!idents[j].1);
        prop_assert!(merge_partials(&segments, &[wrong_end]).is_err());

        let mut wrong_len = shard;
        wrong_len.pop();
        prop_assert!(merge_partials(&segments, &[wrong_len]).is_err());
    }
}
