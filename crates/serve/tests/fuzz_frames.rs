//! Frame-decoder fuzzing: random mutations of valid `JEMSRV1`/`JEMSRV2`
//! frames must never panic the decoder and must never decode to a
//! *different* request than the one originally framed — a damaged frame
//! either errors or (for damage outside the framed bytes, e.g. trailing
//! junk) decodes identically. Raw byte soup must never panic either.
//!
//! Single-bit flips are the damage model for the aliasing property: the
//! two revision magics differ in two bits (`'1' = 0x31`, `'2' = 0x32`),
//! so no single flip can silently re-version a frame, and every in-frame
//! flip is caught by the magic check, the length check, or the FNV-1a
//! body checksum.

use jem_core::{QuerySegment, ReadEnd};
use jem_serve::{read_frame_versioned, write_frame_versioned, ProtocolVersion, Request, Response};
use proptest::prelude::*;

/// Build one of the request shapes from fuzz parameters.
fn build_request(
    kind: u8,
    deadline: u64,
    segs: Vec<(u32, bool, Vec<u8>)>,
    path: String,
) -> Request {
    match kind % 5 {
        0 => Request::Ping,
        1 => Request::Info,
        2 => Request::Shutdown,
        3 => Request::Reload { path },
        _ => Request::Map {
            segments: segs
                .into_iter()
                .map(|(read_idx, suffix, seq)| QuerySegment {
                    read_idx,
                    end: if suffix {
                        ReadEnd::Suffix
                    } else {
                        ReadEnd::Prefix
                    },
                    seq,
                })
                .collect(),
            deadline_ms: if deadline == 0 {
                None
            } else {
                Some(deadline.min(u64::MAX - 1))
            },
        },
    }
}

/// Frame `req` exactly as the client does.
fn frame(req: &Request) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame_versioned(&mut wire, &req.encode(), req.wire_version()).unwrap();
    wire
}

/// Decode a wire buffer end to end: transport frame, then request body.
fn decode(wire: &[u8]) -> Result<Request, jem_serve::ServeError> {
    let mut cursor = wire;
    let (version, body) = read_frame_versioned(&mut cursor)?;
    Request::decode_versioned(&body, version)
}

proptest! {
    #[test]
    fn bit_flips_never_panic_and_never_alias(
        kind in 0u8..5,
        deadline in 0u64..10_000,
        segs in prop::collection::vec(
            (0u32..1000, any::<bool>(), prop::collection::vec(0u8..=255, 0..40)),
            0..4,
        ),
        path in "[a-z/.]{0,24}",
        bit in 0usize..4096,
    ) {
        let req = build_request(kind, deadline, segs, path);
        let wire = frame(&req);
        let mut damaged = wire.clone();
        let bit = bit % (damaged.len() * 8);
        damaged[bit / 8] ^= 1 << (bit % 8);
        // Must not panic; if it decodes at all, it must be the original.
        if let Ok(got) = decode(&damaged) {
            prop_assert_eq!(got, req, "a bit flip decoded to a different request");
        }
        // The pristine frame still round-trips (the damage copy is separate).
        prop_assert_eq!(decode(&wire).unwrap(), req);
    }

    #[test]
    fn truncation_never_panics_and_never_aliases(
        kind in 0u8..5,
        deadline in 0u64..10_000,
        segs in prop::collection::vec(
            (0u32..1000, any::<bool>(), prop::collection::vec(0u8..=255, 0..40)),
            0..4,
        ),
        path in "[a-z/.]{0,24}",
        cut in 0usize..4096,
    ) {
        let req = build_request(kind, deadline, segs, path);
        let mut wire = frame(&req);
        let cut = cut % wire.len(); // strictly shorter than the frame
        wire.truncate(cut);
        prop_assert!(
            decode(&wire).is_err(),
            "a truncated frame must never decode (cut at {})", cut
        );
    }

    #[test]
    fn trailing_junk_is_invisible_to_the_frame_reader(
        kind in 0u8..5,
        deadline in 0u64..10_000,
        segs in prop::collection::vec(
            (0u32..1000, any::<bool>(), prop::collection::vec(0u8..=255, 0..40)),
            0..4,
        ),
        path in "[a-z/.]{0,24}",
        junk in prop::collection::vec(0u8..=255, 1..64),
    ) {
        // The transport is length-prefixed: bytes after the frame belong
        // to no one and must not change what the frame decodes to.
        let req = build_request(kind, deadline, segs, path);
        let mut wire = frame(&req);
        wire.extend_from_slice(&junk);
        prop_assert_eq!(decode(&wire).unwrap(), req);
    }

    #[test]
    fn byte_soup_never_panics(
        soup in prop::collection::vec(0u8..=255, 0..256),
    ) {
        // Transport layer on raw bytes.
        let mut cursor = soup.as_slice();
        let _ = read_frame_versioned(&mut cursor);
        // Body decoders on raw bytes, all revisions.
        let _ = Request::decode_versioned(&soup, ProtocolVersion::V1);
        let _ = Request::decode_versioned(&soup, ProtocolVersion::V2);
        let _ = Response::decode(&soup);
    }

    #[test]
    fn cross_version_body_decode_never_panics(
        kind in 0u8..5,
        deadline in 0u64..10_000,
        segs in prop::collection::vec(
            (0u32..1000, any::<bool>(), prop::collection::vec(0u8..=255, 0..40)),
            0..4,
        ),
        path in "[a-z/.]{0,24}",
    ) {
        // Feeding a body to the *wrong* revision's decoder models a peer
        // with a mismatched magic table: it may error, it may decode (the
        // revisions share deadline-free layouts by design), but it must
        // never panic — and a V2-only request must never sneak past V1.
        let req = build_request(kind, deadline, segs, path);
        let body = req.encode();
        let _ = Request::decode_versioned(&body, ProtocolVersion::V1);
        let _ = Request::decode_versioned(&body, ProtocolVersion::V2);
        if matches!(req, Request::Reload { .. }) {
            prop_assert!(Request::decode_versioned(&body, ProtocolVersion::V1).is_err());
        }
    }
}
