//! Router chaos suite: the scatter-gather invariant under injected shard
//! faults.
//!
//! With one shard of a three-shard topology flapping behind the fault
//! proxy, every routed query must terminate as one of exactly three
//! shapes — the byte-correct full answer, a `Degraded` answer naming its
//! gaps whose mappings equal the survivors' merge, or a typed error —
//! never a hang, never a partial answer dressed as a full one. And the
//! router must *recover without a restart*: once the shard heals, the
//! breaker recloses (the counters prove it) and full answers resume.
//!
//! CI's `router-chaos-smoke` job runs this suite with `JEM_CHAOS_SEED`
//! fixed and `JEM_ROUTER_CHAOS_METRICS` pointing at a snapshot path it
//! uploads and asserts on (degraded answers, hedges, breaker opens and
//! closes all > 0).

use jem_core::{make_segments, JemMapper, MapperConfig, Mapping, QuerySegment};
use jem_seq::SeqRecord;
use jem_serve::{
    merge_partials, start_router, ChaosAction, ChaosPlan, ChaosProxy, Client, RetryPolicy,
    RouterConfig, SegmentPartials, ServeError, ServerConfig, ServerHandle, ShardRegistry,
    ShardSpec, ShardedIndex,
};
use jem_sim::{
    contig_records, fragment_contigs, simulate_hifi, ContigProfile, Genome, HifiProfile,
};
use std::time::Duration;

fn world() -> (JemMapper, Vec<QuerySegment>) {
    let genome = Genome::random(30_000, 0.5, 41);
    let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 42);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 1.0,
            ..Default::default()
        },
        43,
    );
    let config = MapperConfig {
        ell: 400,
        trials: 8,
        ..MapperConfig::default()
    };
    let mapper = JemMapper::build(&contig_records(&contigs), &config);
    let read_recs: Vec<SeqRecord> = reads
        .iter()
        .map(|r| SeqRecord::new(r.id.clone(), r.seq.clone()))
        .collect();
    let segments = make_segments(&read_recs, config.ell);
    (mapper, segments)
}

const N_SLOTS: usize = 3;
const RANGES: [std::ops::Range<usize>; 3] = [0..1, 1..2, 2..3];

/// One shard server owning `RANGES[i]` of the three-slot space.
fn boot_shard(mapper: &JemMapper, i: usize) -> ServerHandle {
    jem_serve::start(
        ShardedIndex::with_slots(mapper.clone(), N_SLOTS, RANGES[i].clone()),
        "127.0.0.1:0",
        &ServerConfig::default(),
    )
    .unwrap()
}

/// The three-shard registry with shard 1 reached via `addr1` (the fault
/// proxy in these tests) and hedging to `replica1`.
fn registry(
    shard0: &ServerHandle,
    addr1: String,
    replica1: Option<String>,
    shard2: &ServerHandle,
) -> ShardRegistry {
    ShardRegistry::new(
        N_SLOTS,
        vec![
            ShardSpec {
                slots: RANGES[0].clone(),
                addr: shard0.addr().to_string(),
                replica: None,
            },
            ShardSpec {
                slots: RANGES[1].clone(),
                addr: addr1,
                replica: replica1,
            },
            ShardSpec {
                slots: RANGES[2].clone(),
                addr: shard2.addr().to_string(),
                replica: None,
            },
        ],
    )
    .unwrap()
}

/// What a degraded answer missing shard 1 must carry: the merge of the
/// two survivors' partials, fetched straight from the shard tier.
fn survivors_merge(
    seg: &[QuerySegment],
    shard0: &ServerHandle,
    shard2: &ServerHandle,
) -> Vec<Mapping> {
    let partials: Vec<Vec<SegmentPartials>> = [shard0, shard2]
        .iter()
        .map(|h| {
            Client::new(h.addr().to_string())
                .map_segments_partial(seg)
                .unwrap()
        })
        .collect();
    merge_partials(seg, &partials).unwrap()
}

#[test]
fn flapping_shard_degrades_then_recovers_without_restart() {
    let (mapper, segments) = world();
    let seg = segments[..2].to_vec();
    let mut expected_full = mapper.map_segments(&seg);
    expected_full.sort_unstable();

    // Shard 1 goes dark (six dropped connections cover every fetch retry
    // until the breaker opens), then straggles, then heals.
    let mut plan = ChaosPlan::none();
    for _ in 0..6 {
        plan = plan.then(ChaosAction::Drop);
    }
    plan = plan.then(ChaosAction::Delay { ms: 300 });
    plan = plan.then(ChaosAction::Delay { ms: 300 });
    for _ in 0..30 {
        plan = plan.then(ChaosAction::Pass);
    }

    let shard0 = boot_shard(&mapper, 0);
    let shard1 = boot_shard(&mapper, 1);
    let shard2 = boot_shard(&mapper, 2);
    let proxy = ChaosProxy::start(shard1.addr(), plan).unwrap();
    // Shard 1's primary path runs through the proxy; its hedge replica is
    // the same shard reached directly.
    let reg = registry(
        &shard0,
        proxy.addr().to_string(),
        Some(shard1.addr().to_string()),
        &shard2,
    );
    let expected_degraded = survivors_merge(&seg, &shard0, &shard2);

    // The straggler threshold sits far above a dropped connection's error
    // latency (so phase A never hedges past the proxy) and well below the
    // 300 ms delay actions (so phase B always does).
    let config = RouterConfig {
        io_timeout: Duration::from_secs(5),
        hedge_after: Some(Duration::from_millis(150)),
        breaker_failures: 3,
        breaker_cooldown: RetryPolicy::new(4, Duration::from_millis(40))
            .with_cap(Duration::from_millis(80)),
        deadline: None,
        ..RouterConfig::default()
    };
    let router = start_router(reg, "127.0.0.1:0", &config).unwrap();
    let client = Client::new(router.addr().to_string()).with_timeout(Duration::from_secs(10));

    // Phase A — shard 1 dark: every query degrades, naming exactly [1],
    // carrying exactly the survivors' merge. The phase ends when a query
    // burns no proxy connection at all: the breaker has opened.
    let mut degraded_phase_a = 0u64;
    loop {
        let before = proxy.connections();
        let (m, missing) = client.map_segments_degraded(&seg).unwrap();
        assert_eq!(missing, vec![1], "only shard 1 is injured");
        assert_eq!(
            m, expected_degraded,
            "a degraded answer is the survivors' merge"
        );
        degraded_phase_a += 1;
        if proxy.connections() == before {
            break;
        }
        assert!(
            degraded_phase_a < 10,
            "the breaker must open within a few failing queries"
        );
    }

    // Phase B — recovery without restart: past the cooldown the half-open
    // probe straggles into the delay actions, the hedge races the replica
    // (the shard's direct address), wins, and the success closes the
    // breaker. Full answers resume on the same router process.
    let mut recovered = false;
    for _ in 0..8 {
        std::thread::sleep(Duration::from_millis(150));
        if let Ok((m, missing)) = client.map_segments_degraded(&seg) {
            if missing.is_empty() {
                assert_eq!(m, expected_full, "a full answer must be byte-correct");
                recovered = true;
                break;
            }
            assert_eq!(missing, vec![1]);
            assert_eq!(m, expected_degraded);
        }
    }
    assert!(
        recovered,
        "the healed shard must rejoin the merge without a router restart"
    );

    // Phase C — the plan keeps cycling; every query must land in one of
    // the three documented shapes: never silence, never a mislabelled
    // answer.
    let mut full = 0u64;
    for i in 0..20 {
        match client.map_segments_degraded(&seg) {
            Ok((m, missing)) if missing.is_empty() => {
                assert_eq!(m, expected_full, "query {i}");
                full += 1;
            }
            Ok((m, missing)) => {
                assert_eq!(missing, vec![1], "query {i}: only shard 1 can go missing");
                assert_eq!(m, expected_degraded, "query {i}");
            }
            Err(
                ServeError::Io(_)
                | ServeError::Protocol(_)
                | ServeError::Busy
                | ServeError::Expired
                | ServeError::ShuttingDown
                | ServeError::Remote(_),
            ) => {}
            Err(other) => panic!("query {i}: non-typed failure {other:?}"),
        }
    }
    assert!(full > 0, "the pass tail must deliver full answers");

    // The shard tier never noticed any of it.
    for h in [&shard0, &shard1, &shard2] {
        Client::new(h.addr().to_string()).ping().unwrap();
    }

    let report = router.shutdown();
    let m = &report.metrics;
    assert!(m.counter("router.degraded") >= degraded_phase_a);
    assert!(
        m.counter("router.breaker_open") >= 1,
        "breaker never opened"
    );
    assert!(
        m.counter("router.breaker_skips") >= 1,
        "open breaker never gated"
    );
    assert!(
        m.counter("router.breaker_close") >= 1,
        "breaker never reclosed"
    );
    assert!(
        m.counter("router.hedges") >= 1,
        "the straggle phase must hedge"
    );
    assert!(
        m.counter("router.hedge_wins") >= 1,
        "the replica must win the race"
    );
    assert!(m.counter("router.full_answers") >= 1);
    assert_eq!(
        m.counter("router.invalid_partials"),
        0,
        "no fault here can produce a validated-but-wrong partial"
    );
    assert!(proxy.faults_injected() > 0, "the plan must actually injure");

    // CI uploads the shutdown snapshot as the router-chaos-smoke artifact.
    if let Ok(path) = std::env::var("JEM_ROUTER_CHAOS_METRICS") {
        std::fs::write(path, report.metrics.to_json()).unwrap();
    }
    proxy.stop();
    shard0.shutdown();
    shard1.shutdown();
    shard2.shutdown();
}

#[test]
fn seeded_random_soak_upholds_the_router_invariant() {
    let seed = std::env::var("JEM_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let (mapper, segments) = world();
    let seg = segments[..2].to_vec();
    let mut expected_full = mapper.map_segments(&seg);
    expected_full.sort_unstable();

    let plan = ChaosPlan::random(seed, 24);
    eprintln!("router chaos plan (seed {seed}): {plan}");
    let shard0 = boot_shard(&mapper, 0);
    let shard1 = boot_shard(&mapper, 1);
    let shard2 = boot_shard(&mapper, 2);
    let proxy = ChaosProxy::start(shard1.addr(), plan).unwrap();
    // No replica: hedges re-dispatch to the primary, through the chaos.
    let reg = registry(&shard0, proxy.addr().to_string(), None, &shard2);
    let expected_degraded = survivors_merge(&seg, &shard0, &shard2);

    let config = RouterConfig {
        io_timeout: Duration::from_secs(2),
        hedge_after: Some(Duration::from_millis(30)),
        breaker_failures: 3,
        breaker_cooldown: RetryPolicy::new(4, Duration::from_millis(30))
            .with_cap(Duration::from_millis(60)),
        deadline: None,
        ..RouterConfig::default()
    };
    let router = start_router(reg, "127.0.0.1:0", &config).unwrap();
    let client = Client::new(router.addr().to_string()).with_timeout(Duration::from_secs(10));

    let mut answered = 0u64;
    for i in 0..30 {
        // The invariant: each call TERMINATES (the loop makes progress)
        // with the full answer, a truthful degraded answer, or a typed
        // error.
        match client.map_segments_degraded(&seg) {
            Ok((m, missing)) if missing.is_empty() => {
                assert_eq!(m, expected_full, "query {i}: full answers must be correct");
                answered += 1;
            }
            Ok((m, missing)) => {
                assert_eq!(
                    missing,
                    vec![1],
                    "query {i}: only shard 1 is behind the proxy"
                );
                assert_eq!(
                    m, expected_degraded,
                    "query {i}: degraded answers must be truthful"
                );
                answered += 1;
            }
            Err(
                ServeError::Io(_)
                | ServeError::Protocol(_)
                | ServeError::Busy
                | ServeError::Expired
                | ServeError::ShuttingDown
                | ServeError::Remote(_),
            ) => {}
            Err(other) => panic!("query {i}: non-typed failure {other:?}"),
        }
    }
    assert!(proxy.faults_injected() > 0, "the plan must actually injure");
    assert!(answered > 0, "some traffic must survive the chaos");

    // None of the abuse hurt the shard tier.
    for h in [&shard0, &shard1, &shard2] {
        Client::new(h.addr().to_string()).ping().unwrap();
    }
    proxy.stop();
    router.shutdown();
    shard0.shutdown();
    shard1.shutdown();
    shard2.shutdown();
}
