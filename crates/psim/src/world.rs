//! The BSP world: supersteps, collectives, and timing capture.

use crate::cost::CostModel;
use crate::fault::{FaultKind, FaultPlan, FaultStats, RankOutcome};
use crate::report::{RunReport, StepKind, StepReport};
use parking_lot::Mutex;
use std::time::Instant;

/// Partition `n` items into `p` contiguous blocks; returns the half-open
/// item range of block `rank` (the block distribution of step S1). Blocks
/// cover `0..n` exactly and differ in size by at most one item.
///
/// This is the one definition of the block formula — [`World::block_range`]
/// and the distributed drivers all delegate here.
pub fn block_range(p: usize, n: usize, rank: usize) -> std::ops::Range<usize> {
    debug_assert!(p >= 1 && rank < p);
    let base = n / p;
    let extra = n % p;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    start..(start + len).min(n)
}

/// How supersteps execute on the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Ranks run back-to-back on the calling thread. Per-rank timings are
    /// exact even on a single-core host (the default, and what the
    /// experiment harness uses).
    Sequential,
    /// Ranks run on OS threads via `std::thread::scope`. Faster on
    /// multi-core hosts, but per-rank wall-clock measurements are inflated
    /// when ranks outnumber cores.
    Threaded,
}

/// A simulated distributed-memory machine of `p` ranks.
///
/// A program interacts with the world in bulk-synchronous phases:
///
/// ```
/// use jem_psim::{CostModel, World};
///
/// let mut world = World::new(4, CostModel::ethernet_10g());
/// // S2-style compute: each rank produces a local value.
/// let locals: Vec<Vec<u64>> = world.superstep("square", |rank| {
///     vec![(rank * rank) as u64]
/// });
/// // S3-style collective: everyone receives the concatenation.
/// let global = world.allgatherv("gather", locals);
/// assert_eq!(global, vec![0, 1, 4, 9]);
/// let report = world.into_report();
/// assert_eq!(report.ranks, 4);
/// assert!(report.comm_secs() > 0.0);
/// ```
#[derive(Debug)]
pub struct World {
    p: usize,
    cost: CostModel,
    mode: ExecMode,
    steps: Vec<StepReport>,
    faults: FaultPlan,
    alive: Vec<bool>,
    stats: FaultStats,
}

impl World {
    /// A world of `p` ranks executing sequentially.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize, cost: CostModel) -> Self {
        assert!(p >= 1, "world needs at least one rank");
        World {
            p,
            cost,
            mode: ExecMode::Sequential,
            steps: Vec::new(),
            faults: FaultPlan::none(),
            alive: vec![true; p],
            stats: FaultStats::default(),
        }
    }

    /// Select the execution mode (see [`ExecMode`]).
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Install a fault plan. Faults fire only in [`World::superstep_faulty`]
    /// steps; the plain collectives and [`World::superstep`] are the
    /// fault-oblivious legacy path and ignore the plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Number of ranks `p`.
    pub fn ranks(&self) -> usize {
        self.p
    }

    /// Is `rank` still alive (i.e. has it not crashed)?
    pub fn is_alive(&self, rank: usize) -> bool {
        self.alive[rank]
    }

    /// Ranks still alive, ascending.
    pub fn alive_ranks(&self) -> Vec<usize> {
        (0..self.p).filter(|&r| self.alive[r]).collect()
    }

    /// Fault counters accumulated so far (also carried on the final
    /// [`RunReport`]).
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// The communication cost model in effect.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Partition `n` items across ranks in contiguous blocks; returns the
    /// half-open item range of `rank` (block distribution of step S1).
    /// Delegates to the free [`block_range`] function.
    pub fn block_range(&self, n: usize, rank: usize) -> std::ops::Range<usize> {
        block_range(self.p, n, rank)
    }

    /// Report the step just pushed onto `self.steps` to the process-global
    /// metrics recorder (free when none is installed). A world running
    /// under `--metrics` thus surfaces its simulated per-step breakdown
    /// live, in the same snapshot as the shared-memory pipeline's spans.
    fn observe_last_step(&self) {
        let rec = jem_obs::recorder();
        if rec.enabled() {
            let step = self.steps.last().expect("called right after a push");
            crate::report::record_step(step, rec);
        }
    }

    /// Run one superstep: rank `r` evaluates `f(r)`; per-rank compute time
    /// is recorded. Returns the rank-ordered outputs.
    pub fn superstep<T: Send>(&mut self, name: &str, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let (outputs, per_rank) = match self.mode {
            ExecMode::Sequential => {
                let mut outs = Vec::with_capacity(self.p);
                let mut times = Vec::with_capacity(self.p);
                for rank in 0..self.p {
                    let t0 = Instant::now();
                    outs.push(f(rank));
                    times.push(t0.elapsed().as_secs_f64());
                }
                (outs, times)
            }
            ExecMode::Threaded => {
                let results: Mutex<Vec<Option<(T, f64)>>> =
                    Mutex::new((0..self.p).map(|_| None).collect());
                std::thread::scope(|scope| {
                    for rank in 0..self.p {
                        let f = &f;
                        let results = &results;
                        scope.spawn(move || {
                            let t0 = Instant::now();
                            let out = f(rank);
                            let dt = t0.elapsed().as_secs_f64();
                            results.lock()[rank] = Some((out, dt));
                        });
                    }
                });
                let mut outs = Vec::with_capacity(self.p);
                let mut times = Vec::with_capacity(self.p);
                for slot in results.into_inner() {
                    let (out, dt) = slot.expect("every rank stores its result");
                    outs.push(out);
                    times.push(dt);
                }
                (outs, times)
            }
        };
        self.steps.push(StepReport {
            name: name.to_string(),
            kind: StepKind::Compute,
            per_rank_secs: per_rank,
            comm_secs: 0.0,
            bytes: 0,
        });
        self.observe_last_step();
        outputs
    }

    /// Run one superstep under the installed fault plan: rank `r` evaluates
    /// `f(r)` unless it is dead or crashes, and faults surface as values —
    /// never as host panics.
    ///
    /// Semantics per rank:
    ///
    /// * already dead (crashed earlier) → [`RankOutcome::Failed`], no time
    ///   charged;
    /// * `Crash` scheduled here → the rank dies *at step start* (fail-stop):
    ///   `f` is not run, no time is charged, the rank stays dead for the
    ///   rest of the run, outcome `Failed`;
    /// * `Straggle { factor }` → `f` runs, its measured time × `factor` is
    ///   charged (the degraded makespan shows up in the report), outcome
    ///   `Ok`;
    /// * `Corrupt` → `f` runs and is charged normally, outcome
    ///   [`RankOutcome::Corrupt`] carrying the pristine value — the caller
    ///   garbles it at the delivery boundary (see
    ///   [`crate::fault::corrupt_u64s`]);
    /// * no fault → outcome `Ok`.
    pub fn superstep_faulty<T: Send>(
        &mut self,
        name: &str,
        f: impl Fn(usize) -> T + Sync,
    ) -> Vec<RankOutcome<T>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Fate {
            Dead,
            Crash,
            Run { corrupt: bool, factor: f64 },
        }
        let fates: Vec<Fate> = (0..self.p)
            .map(|rank| {
                if !self.alive[rank] {
                    Fate::Dead
                } else {
                    match self.faults.fault_for(name, rank) {
                        Some(FaultKind::Crash) => Fate::Crash,
                        Some(FaultKind::Corrupt) => Fate::Run {
                            corrupt: true,
                            factor: 1.0,
                        },
                        Some(FaultKind::Straggle { factor }) => Fate::Run {
                            corrupt: false,
                            factor,
                        },
                        None => Fate::Run {
                            corrupt: false,
                            factor: 1.0,
                        },
                    }
                }
            })
            .collect();
        for (rank, fate) in fates.iter().enumerate() {
            if *fate == Fate::Crash {
                self.alive[rank] = false;
                self.stats.crashes += 1;
                jem_obs::add("psim.crashes", 1);
            }
        }

        // Run `f` for every rank that survives the step; `None` elsewhere.
        let raw: Vec<Option<(T, f64)>> = match self.mode {
            ExecMode::Sequential => fates
                .iter()
                .enumerate()
                .map(|(rank, fate)| match fate {
                    Fate::Run { .. } => {
                        let t0 = Instant::now();
                        let out = f(rank);
                        Some((out, t0.elapsed().as_secs_f64()))
                    }
                    _ => None,
                })
                .collect(),
            ExecMode::Threaded => {
                let results: Mutex<Vec<Option<(T, f64)>>> =
                    Mutex::new((0..self.p).map(|_| None).collect());
                std::thread::scope(|scope| {
                    for (rank, fate) in fates.iter().enumerate() {
                        if !matches!(fate, Fate::Run { .. }) {
                            continue;
                        }
                        let f = &f;
                        let results = &results;
                        scope.spawn(move || {
                            let t0 = Instant::now();
                            let out = f(rank);
                            let dt = t0.elapsed().as_secs_f64();
                            results.lock()[rank] = Some((out, dt));
                        });
                    }
                });
                results.into_inner()
            }
        };

        let mut outcomes = Vec::with_capacity(self.p);
        let mut per_rank = Vec::with_capacity(self.p);
        for (fate, slot) in fates.into_iter().zip(raw) {
            match (fate, slot) {
                (Fate::Run { corrupt, factor }, Some((out, dt))) => {
                    if factor != 1.0 {
                        self.stats.straggles += 1;
                        jem_obs::add("psim.straggles", 1);
                    }
                    per_rank.push(dt * factor);
                    if corrupt {
                        self.stats.corrupt_payloads += 1;
                        jem_obs::add("psim.corrupt_payloads", 1);
                        outcomes.push(RankOutcome::Corrupt(out));
                    } else {
                        outcomes.push(RankOutcome::Ok(out));
                    }
                }
                _ => {
                    per_rank.push(0.0);
                    outcomes.push(RankOutcome::Failed);
                }
            }
        }
        self.steps.push(StepReport {
            name: name.to_string(),
            kind: StepKind::Compute,
            per_rank_secs: per_rank,
            comm_secs: 0.0,
            bytes: 0,
        });
        self.observe_last_step();
        outcomes
    }

    /// Run a computation that every rank would perform *identically* (e.g.
    /// decoding a replicated table after an allgather): `f` executes once,
    /// and its measured time is charged to every rank. Equivalent to a
    /// superstep of `p` identical closures, minus the redundant execution.
    pub fn superstep_replicated<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64();
        self.steps.push(StepReport {
            name: name.to_string(),
            kind: StepKind::Compute,
            per_rank_secs: vec![dt; self.p],
            comm_secs: 0.0,
            bytes: 0,
        });
        self.observe_last_step();
        out
    }

    fn charge(&mut self, name: &str, bytes: usize) {
        let comm_secs = self.cost.collective_cost(self.p, bytes);
        self.steps.push(StepReport {
            name: name.to_string(),
            kind: StepKind::Communication,
            per_rank_secs: Vec::new(),
            comm_secs,
            bytes,
        });
        self.observe_last_step();
    }

    /// `MPI_Allgatherv`: every rank contributes a variable-length vector;
    /// every rank ends with the rank-ordered concatenation. Returns that
    /// concatenation once (all ranks would hold identical copies).
    ///
    /// Charged bytes: the full payload (`Σ_r |local_r| · sizeof(T)`), the
    /// same `O(μ·nT)` volume the paper's analysis charges step S3.
    pub fn allgatherv<T: Send>(&mut self, name: &str, locals: Vec<Vec<T>>) -> Vec<T> {
        assert_eq!(locals.len(), self.p, "one contribution per rank required");
        let total: usize = locals.iter().map(Vec::len).sum();
        self.charge(name, total * std::mem::size_of::<T>());
        let mut out = Vec::with_capacity(total);
        for l in locals {
            out.extend(l);
        }
        out
    }

    /// `MPI_Gather` to rank 0: returns the rank-ordered values.
    pub fn gather<T: Send>(&mut self, name: &str, locals: Vec<T>) -> Vec<T> {
        assert_eq!(locals.len(), self.p, "one contribution per rank required");
        self.charge(name, locals.len() * std::mem::size_of::<T>());
        locals
    }

    /// `MPI_Bcast` from rank 0: every rank receives a clone of `value`.
    /// `payload_bytes` sizes the charged traffic (heap payloads are opaque
    /// to `size_of`, so the caller states the volume).
    pub fn broadcast<T: Clone>(&mut self, name: &str, value: T, payload_bytes: usize) -> Vec<T> {
        self.charge(name, payload_bytes);
        vec![value; self.p]
    }

    /// Record an explicitly-sized communication event (for payloads whose
    /// wire size `size_of` cannot see, e.g. nested vectors).
    pub fn charge_comm(&mut self, name: &str, bytes: usize) {
        self.charge(name, bytes);
    }

    /// Finish the run and return its timing report.
    pub fn into_report(self) -> RunReport {
        RunReport {
            steps: self.steps,
            ranks: self.p,
            fault_stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        World::new(0, CostModel::zero());
    }

    #[test]
    fn block_range_covers_exactly() {
        for p in [1usize, 2, 3, 7, 64] {
            for n in [0usize, 1, 5, 64, 100, 1001] {
                let w = World::new(p, CostModel::zero());
                let mut covered = 0;
                let mut prev_end = 0;
                for r in 0..p {
                    let range = w.block_range(n, r);
                    assert_eq!(range.start, prev_end, "ranges must be contiguous");
                    prev_end = range.end;
                    covered += range.len();
                    // Balance: block sizes differ by at most 1.
                    assert!(range.len() <= n / p + 1);
                }
                assert_eq!(covered, n, "p={p} n={n}");
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn block_range_more_ranks_than_items() {
        // p > n: the first n ranks get one item each, the rest get empty
        // ranges — never a panic, never an out-of-bounds start.
        let p = 10;
        for n in [0usize, 1, 3, 9] {
            for r in 0..p {
                let range = block_range(p, n, r);
                assert!(range.start <= range.end, "p={p} n={n} r={r}");
                assert!(range.end <= n, "p={p} n={n} r={r}");
                assert_eq!(range.len(), usize::from(r < n), "p={p} n={n} r={r}");
            }
        }
    }

    #[test]
    fn block_range_zero_items_all_empty() {
        for p in [1usize, 2, 7] {
            for r in 0..p {
                assert!(block_range(p, 0, r).is_empty());
            }
        }
    }

    #[test]
    fn block_range_last_rank_takes_short_remainder() {
        // n = 10 over p = 4: sizes 3,3,2,2 — the extra items go to the
        // lowest ranks and the last rank ends exactly at n.
        let sizes: Vec<usize> = (0..4).map(|r| block_range(4, 10, r).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(block_range(4, 10, 3).end, 10);
        // Single rank owns everything.
        assert_eq!(block_range(1, 10, 0), 0..10);
    }

    #[test]
    fn superstep_outputs_in_rank_order() {
        let mut w = World::new(5, CostModel::zero());
        let out = w.superstep("id", |r| r * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
        let report = w.into_report();
        assert_eq!(report.steps.len(), 1);
        assert_eq!(report.steps[0].per_rank_secs.len(), 5);
    }

    #[test]
    fn threaded_superstep_matches_sequential() {
        let mut seq = World::new(8, CostModel::zero());
        let a = seq.superstep("sq", |r| r * r);
        let mut thr = World::new(8, CostModel::zero()).with_mode(ExecMode::Threaded);
        let b = thr.superstep("sq", |r| r * r);
        assert_eq!(a, b);
    }

    #[test]
    fn allgatherv_concatenates_in_rank_order() {
        let mut w = World::new(3, CostModel::ethernet_10g());
        let locals = vec![vec![1u64, 2], vec![], vec![3]];
        let global = w.allgatherv("g", locals);
        assert_eq!(global, vec![1, 2, 3]);
        let report = w.into_report();
        assert_eq!(report.total_bytes(), 3 * 8);
        assert!(report.comm_secs() > 0.0);
    }

    #[test]
    #[should_panic(expected = "one contribution per rank")]
    fn allgatherv_requires_p_contributions() {
        let mut w = World::new(3, CostModel::zero());
        w.allgatherv("g", vec![vec![1u8]]);
    }

    #[test]
    fn broadcast_clones_to_all() {
        let mut w = World::new(4, CostModel::ethernet_10g());
        let copies = w.broadcast("b", String::from("hi"), 2);
        assert_eq!(copies.len(), 4);
        assert!(copies.iter().all(|c| c == "hi"));
    }

    #[test]
    fn single_rank_comm_is_free() {
        let mut w = World::new(1, CostModel::ethernet_10g());
        let g = w.allgatherv("g", vec![vec![0u64; 1_000_000]]);
        assert_eq!(g.len(), 1_000_000);
        let r = w.into_report();
        assert_eq!(r.comm_secs(), 0.0, "p=1 has no network");
        assert_eq!(r.comm_fraction(), 0.0);
    }

    #[test]
    fn replicated_superstep_charges_all_ranks() {
        let mut w = World::new(4, CostModel::zero());
        let v = w.superstep_replicated("decode", || 42);
        assert_eq!(v, 42);
        let r = w.into_report();
        assert_eq!(r.steps[0].per_rank_secs.len(), 4);
        let t = r.steps[0].per_rank_secs[0];
        assert!(r.steps[0].per_rank_secs.iter().all(|&x| x == t));
    }

    #[test]
    fn faulty_superstep_without_plan_equals_plain() {
        let mut w = World::new(4, CostModel::zero());
        let out = w.superstep_faulty("id", |r| r * 10);
        assert_eq!(
            out,
            vec![
                RankOutcome::Ok(0),
                RankOutcome::Ok(10),
                RankOutcome::Ok(20),
                RankOutcome::Ok(30)
            ]
        );
        assert_eq!(w.alive_ranks(), vec![0, 1, 2, 3]);
        assert!(!w.fault_stats().any());
    }

    #[test]
    fn crashed_rank_stays_dead() {
        let plan = FaultPlan::none().with_crash("a", 1);
        let mut w = World::new(3, CostModel::zero()).with_faults(plan);
        let a = w.superstep_faulty("a", |r| r);
        assert_eq!(
            a,
            vec![RankOutcome::Ok(0), RankOutcome::Failed, RankOutcome::Ok(2)]
        );
        assert!(!w.is_alive(1));
        // Dead at every later step, even ones the plan never names.
        let b = w.superstep_faulty("b", |r| r);
        assert_eq!(b[1], RankOutcome::Failed);
        assert_eq!(w.alive_ranks(), vec![0, 2]);
        let report = w.into_report();
        assert_eq!(report.fault_stats.crashes, 1);
        // The dead rank is charged no time.
        assert_eq!(report.steps[1].per_rank_secs[1], 0.0);
    }

    #[test]
    fn corrupt_outcome_carries_value() {
        let plan = FaultPlan::none().with_corrupt("enc", 0);
        let mut w = World::new(2, CostModel::zero()).with_faults(plan);
        let out = w.superstep_faulty("enc", |r| vec![r as u64]);
        assert_eq!(out[0], RankOutcome::Corrupt(vec![0]));
        assert_eq!(out[1], RankOutcome::Ok(vec![1]));
        assert_eq!(w.fault_stats().corrupt_payloads, 1);
    }

    #[test]
    fn straggler_time_is_inflated() {
        let plan = FaultPlan::none().with_straggle("work", 1, 1000.0);
        let mut w = World::new(2, CostModel::zero()).with_faults(plan);
        w.superstep_faulty("work", |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        let r = w.into_report();
        assert_eq!(r.fault_stats.straggles, 1);
        let times = &r.steps[0].per_rank_secs;
        assert!(
            times[1] > times[0] * 50.0,
            "straggler must dominate: {times:?}"
        );
    }

    #[test]
    fn threaded_faulty_superstep_matches_sequential() {
        let plan = FaultPlan::none().with_crash("sq", 2).with_corrupt("sq", 0);
        let mut seq = World::new(4, CostModel::zero()).with_faults(plan.clone());
        let a = seq.superstep_faulty("sq", |r| r * r);
        let mut thr = World::new(4, CostModel::zero())
            .with_mode(ExecMode::Threaded)
            .with_faults(plan);
        let b = thr.superstep_faulty("sq", |r| r * r);
        assert_eq!(a, b);
        assert_eq!(seq.alive_ranks(), thr.alive_ranks());
    }

    #[test]
    fn makespan_accumulates_steps() {
        let mut w = World::new(
            2,
            CostModel {
                latency_s: 1.0,
                sec_per_byte: 0.0,
            },
        );
        w.superstep("work", |_| {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        w.charge_comm("sync", 0);
        let r = w.into_report();
        // One collective at p=2 costs τ·log2(2) = 1s; compute adds ≥2 ms.
        assert!(r.makespan_secs() > 1.0);
        assert!(r.compute_secs() >= 0.002);
        assert!((r.comm_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strong_scaling_shape_on_synthetic_work() {
        // Critical path of an evenly-divided workload must shrink with p.
        let busy = |units: usize| {
            // Deterministic spin so timings are meaningful on any host.
            let mut acc = 0u64;
            for i in 0..units * 20_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            }
            acc
        };
        let mut spans = Vec::new();
        for p in [1usize, 2, 4, 8] {
            let mut w = World::new(p, CostModel::zero());
            w.superstep("work", |rank| {
                let range = w_block(p, 64, rank);
                busy(range.len())
            });
            spans.push(w.into_report().makespan_secs());
        }
        // Each doubling of p should cut the critical path substantially.
        assert!(spans[3] < spans[0] * 0.5, "spans: {spans:?}");

        fn w_block(p: usize, n: usize, rank: usize) -> std::ops::Range<usize> {
            World::new(p, CostModel::zero()).block_range(n, rank)
        }
    }
}
