//! Deterministic fault injection for the BSP world.
//!
//! A [`FaultPlan`] schedules faults at `(superstep name, rank)` coordinates.
//! Three fault kinds model the failure modes a real MPI mapper meets:
//!
//! * **Crash** — the rank dies at the step and stays dead for the rest of
//!   the run (fail-stop model).
//! * **Corrupt** — the rank finishes its work, but the payload it delivers
//!   is garbled in transit (bit flips, truncation, trailing junk).
//! * **Straggle** — the rank finishes, but `factor`× slower than measured;
//!   the inflated time is charged to the run report, degrading the
//!   simulated makespan.
//!
//! Faults never panic the host: a faulty superstep reports per-rank
//! [`RankOutcome`] values and the driver decides how to recover.
//!
//! Plans are plain data — cloneable, comparable, buildable by hand
//! ([`FaultPlan::with_crash`] etc.), parseable from a CLI spec string
//! ([`FaultPlan::parse`]), or drawn deterministically from a seed
//! ([`FaultPlan::random`]) for property tests.

use std::fmt;

/// What a fault does to the afflicted rank at its trigger step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Fail-stop: the rank produces nothing and never runs again.
    Crash,
    /// The rank's payload for this step is delivered corrupted.
    Corrupt,
    /// The rank's measured compute time is multiplied by `factor` (> 1 for
    /// a slowdown; values ≤ 1 are accepted but pointless).
    Straggle {
        /// Slowdown multiplier applied to the measured compute seconds.
        factor: f64,
    },
}

/// One scheduled fault: `kind` strikes `rank` at the superstep named `step`.
#[derive(Clone, Debug, PartialEq)]
pub struct Fault {
    /// Name of the superstep at which the fault triggers.
    pub step: String,
    /// Rank the fault strikes.
    pub rank: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults for one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    corruption_seed: u64,
}

impl FaultPlan {
    /// The empty plan: no faults, every run is identical to the plain
    /// drivers.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Schedule a crash of `rank` at superstep `step`.
    pub fn with_crash(mut self, step: &str, rank: usize) -> Self {
        self.faults.push(Fault {
            step: step.to_string(),
            rank,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Schedule a corrupted payload from `rank` at superstep `step`.
    pub fn with_corrupt(mut self, step: &str, rank: usize) -> Self {
        self.faults.push(Fault {
            step: step.to_string(),
            rank,
            kind: FaultKind::Corrupt,
        });
        self
    }

    /// Schedule `rank` to run `factor`× slower at superstep `step`.
    pub fn with_straggle(mut self, step: &str, rank: usize, factor: f64) -> Self {
        self.faults.push(Fault {
            step: step.to_string(),
            rank,
            kind: FaultKind::Straggle { factor },
        });
        self
    }

    /// Set the seed that parameterizes payload corruption (which word is
    /// garbled, and how). Distinct seeds corrupt distinct positions, so
    /// tests can sweep corruption patterns deterministically.
    pub fn with_corruption_seed(mut self, seed: u64) -> Self {
        self.corruption_seed = seed;
        self
    }

    /// The corruption seed (see [`FaultPlan::with_corruption_seed`]).
    pub fn corruption_seed(&self) -> u64 {
        self.corruption_seed
    }

    /// All scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Is the plan fault-free?
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault scheduled for `(step, rank)`, if any (first match wins).
    pub fn fault_for(&self, step: &str, rank: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.rank == rank && f.step == step)
            .map(|f| f.kind)
    }

    /// Number of distinct ranks the plan ever crashes.
    pub fn crashed_ranks(&self) -> usize {
        let mut ranks: Vec<usize> = self
            .faults
            .iter()
            .filter(|f| f.kind == FaultKind::Crash)
            .map(|f| f.rank)
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks.len()
    }

    /// Draw a deterministic random plan from `seed`: `n_crashes` distinct
    /// ranks crash and `n_corrupt` payloads are garbled, each at a step
    /// drawn uniformly from `steps`. `n_crashes` is clamped to `p - 1` so
    /// at least one rank always survives (the recovery precondition).
    ///
    /// # Panics
    /// Panics if `p == 0` or `steps` is empty while faults are requested.
    pub fn random(seed: u64, p: usize, steps: &[&str], n_crashes: usize, n_corrupt: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        assert!(
            !steps.is_empty() || (n_crashes == 0 && n_corrupt == 0),
            "need at least one step to place faults at"
        );
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // splitmix64 — deterministic, dependency-free.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::none().with_corruption_seed(seed);
        // Crash distinct ranks, keeping one survivor.
        let n_crashes = n_crashes.min(p.saturating_sub(1));
        let mut victims: Vec<usize> = (0..p).collect();
        for _ in 0..n_crashes {
            let i = (next() % victims.len() as u64) as usize;
            let rank = victims.swap_remove(i);
            let step = steps[(next() % steps.len() as u64) as usize];
            plan = plan.with_crash(step, rank);
        }
        for _ in 0..n_corrupt {
            let rank = (next() % p as u64) as usize;
            let step = steps[(next() % steps.len() as u64) as usize];
            plan = plan.with_corrupt(step, rank);
        }
        plan
    }

    /// Parse a comma-separated CLI spec. Entry grammar:
    ///
    /// ```text
    /// crash@RANK:STEP
    /// corrupt@RANK:STEP
    /// straggle@RANK:STEP*FACTOR
    /// ```
    ///
    /// e.g. `crash@1:subject sketch,straggle@3:query map*4`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("fault entry {entry:?}: expected KIND@RANK:STEP"))?;
            let (rank, step) = rest
                .split_once(':')
                .ok_or_else(|| format!("fault entry {entry:?}: expected KIND@RANK:STEP"))?;
            let rank: usize = rank
                .trim()
                .parse()
                .map_err(|_| format!("fault entry {entry:?}: bad rank {rank:?}"))?;
            match kind.trim() {
                "crash" => plan = plan.with_crash(step.trim(), rank),
                "corrupt" => plan = plan.with_corrupt(step.trim(), rank),
                "straggle" => {
                    let (step, factor) = step
                        .rsplit_once('*')
                        .ok_or_else(|| format!("fault entry {entry:?}: straggle needs *FACTOR"))?;
                    let factor: f64 = factor
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault entry {entry:?}: bad factor {factor:?}"))?;
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(format!("fault entry {entry:?}: factor must be positive"));
                    }
                    plan = plan.with_straggle(step.trim(), rank, factor);
                }
                other => {
                    return Err(format!(
                        "fault entry {entry:?}: unknown kind {other:?} (crash|corrupt|straggle)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "(no faults)");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match fault.kind {
                FaultKind::Crash => write!(f, "crash@{}:{}", fault.rank, fault.step)?,
                FaultKind::Corrupt => write!(f, "corrupt@{}:{}", fault.rank, fault.step)?,
                FaultKind::Straggle { factor } => {
                    write!(f, "straggle@{}:{}*{}", fault.rank, fault.step, factor)?
                }
            }
        }
        Ok(())
    }
}

/// Per-rank result of a faulty superstep (see `World::superstep_faulty`).
#[derive(Clone, Debug, PartialEq)]
pub enum RankOutcome<T> {
    /// The rank completed and its payload arrived intact.
    Ok(T),
    /// The rank completed, but its payload must be treated as garbled in
    /// transit — the value carried here is the *pristine* output; the
    /// driver garbles it at the delivery boundary (see [`corrupt_u64s`])
    /// so detection logic is exercised on realistic wire damage.
    Corrupt(T),
    /// The rank crashed (now or at an earlier step) and produced nothing.
    Failed,
}

impl<T> RankOutcome<T> {
    /// The payload of an `Ok` outcome.
    pub fn ok(self) -> Option<T> {
        match self {
            RankOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// Did the rank complete the step (intact or corrupted payload)?
    pub fn completed(&self) -> bool {
        !matches!(self, RankOutcome::Failed)
    }
}

/// Deterministically garble a `u64` stream in place, parameterized by
/// `seed`. One of three damage modes is applied — flip bits of one word,
/// truncate the tail, or append junk — and the stream is guaranteed to
/// differ from the original afterwards (an empty stream grows a junk word).
pub fn corrupt_u64s(stream: &mut Vec<u64>, seed: u64) {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if stream.is_empty() {
        stream.push(z | 1);
        return;
    }
    match z % 3 {
        0 => {
            // Bit damage: XOR with a never-zero mask.
            let i = (z >> 2) as usize % stream.len();
            stream[i] ^= (z >> 16) | 1;
        }
        1 => {
            // Truncation: drop at least one trailing word.
            let keep = (z >> 2) as usize % stream.len();
            stream.truncate(keep);
        }
        _ => {
            // Trailing junk.
            stream.push(z | 1);
        }
    }
}

/// Fault and recovery counters of one run, carried on the run report.
///
/// The first three are incremented by the world as faults fire; the last
/// three are filled in by a recovering driver as it works around them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Ranks that crashed during the run.
    pub crashes: usize,
    /// Payloads delivered corrupted.
    pub corrupt_payloads: usize,
    /// Superstep executions slowed by a straggle fault.
    pub straggles: usize,
    /// Retry supersteps the driver ran to replay lost work.
    pub retries: usize,
    /// Work blocks reassigned from a failed rank to a survivor.
    pub reassigned_blocks: usize,
    /// Corrupt payloads detected and re-requested from their owner.
    pub re_requests: usize,
}

impl FaultStats {
    /// Did anything at all go wrong (or get recovered) during the run?
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crashes={} corrupt={} straggles={} retries={} reassigned={} re_requests={}",
            self.crashes,
            self.corrupt_payloads,
            self.straggles,
            self.retries,
            self.reassigned_blocks,
            self.re_requests
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::none()
            .with_crash("sketch", 1)
            .with_corrupt("sketch", 2)
            .with_straggle("map", 0, 4.0);
        assert_eq!(plan.fault_for("sketch", 1), Some(FaultKind::Crash));
        assert_eq!(plan.fault_for("sketch", 2), Some(FaultKind::Corrupt));
        assert_eq!(
            plan.fault_for("map", 0),
            Some(FaultKind::Straggle { factor: 4.0 })
        );
        assert_eq!(plan.fault_for("sketch", 0), None);
        assert_eq!(plan.fault_for("load", 1), None);
        assert_eq!(plan.crashed_ranks(), 1);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn parse_roundtrip() {
        let spec = "crash@1:subject sketch,corrupt@0:subject sketch,straggle@3:query map*2.5";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.fault_for("subject sketch", 1), Some(FaultKind::Crash));
        assert_eq!(
            plan.fault_for("subject sketch", 0),
            Some(FaultKind::Corrupt)
        );
        assert_eq!(
            plan.fault_for("query map", 3),
            Some(FaultKind::Straggle { factor: 2.5 })
        );
        // Display emits the same spec grammar.
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultPlan::parse("crash@x:step").is_err());
        assert!(FaultPlan::parse("crash:1@step").is_err());
        assert!(FaultPlan::parse("explode@1:step").is_err());
        assert!(FaultPlan::parse("straggle@1:step").is_err());
        assert!(FaultPlan::parse("straggle@1:step*-2").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn random_plan_is_deterministic_and_bounded() {
        let steps = ["a", "b", "c"];
        let p1 = FaultPlan::random(7, 8, &steps, 3, 2);
        let p2 = FaultPlan::random(7, 8, &steps, 3, 2);
        assert_eq!(p1, p2, "same seed must give the same plan");
        assert_eq!(p1.crashed_ranks(), 3);
        let greedy = FaultPlan::random(7, 4, &steps, 100, 0);
        assert_eq!(greedy.crashed_ranks(), 3, "at least one rank must survive");
        assert_ne!(
            FaultPlan::random(8, 8, &steps, 3, 2),
            p1,
            "seed must matter"
        );
    }

    #[test]
    fn corruption_always_changes_the_stream() {
        for seed in 0..200u64 {
            let original: Vec<u64> = (0..(seed % 17)).collect();
            let mut damaged = original.clone();
            corrupt_u64s(&mut damaged, seed);
            assert_ne!(damaged, original, "seed {seed}");
            // Deterministic damage.
            let mut again = original.clone();
            corrupt_u64s(&mut again, seed);
            assert_eq!(again, damaged);
        }
    }

    #[test]
    fn fault_stats_any() {
        assert!(!FaultStats::default().any());
        let s = FaultStats {
            retries: 1,
            ..Default::default()
        };
        assert!(s.any());
        assert!(s.to_string().contains("retries=1"));
    }
}
