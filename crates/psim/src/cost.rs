//! Communication cost model.
//!
//! The paper's complexity analysis charges its single collective (the
//! Allgatherv of step S3) `O(τ·log p + μ·n·T)` where `τ` is network latency
//! and `μ` the reciprocal bandwidth (sec/byte). We adopt the same
//! closed-form model for every collective, parameterized per network class.

/// LogP-style collective cost model: `time = τ·ceil(log2 p) + μ·bytes`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Per-message network latency `τ` in seconds.
    pub latency_s: f64,
    /// Reciprocal bandwidth `μ` in seconds per byte.
    pub sec_per_byte: f64,
}

impl CostModel {
    /// 10 Gbps Ethernet-class network — the paper's testbed interconnect.
    /// `τ = 50 µs`, effective bandwidth 1.25 GB/s.
    pub fn ethernet_10g() -> Self {
        CostModel {
            latency_s: 50e-6,
            sec_per_byte: 1.0 / 1.25e9,
        }
    }

    /// HPC-interconnect-class network (InfiniBand-like): `τ = 2 µs`, 12 GB/s.
    pub fn infiniband() -> Self {
        CostModel {
            latency_s: 2e-6,
            sec_per_byte: 1.0 / 12e9,
        }
    }

    /// A free network: collectives cost nothing (useful to isolate compute).
    pub fn zero() -> Self {
        CostModel {
            latency_s: 0.0,
            sec_per_byte: 0.0,
        }
    }

    /// Cost of a collective moving `bytes` total payload among `p` ranks.
    ///
    /// `p ≤ 1` is free: a single rank performs no communication.
    pub fn collective_cost(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let log_p = (p as f64).log2().ceil();
        self.latency_s * log_p + self.sec_per_byte * bytes as f64
    }

    /// Cost of a point-to-point message of `bytes`.
    pub fn p2p_cost(&self, bytes: usize) -> f64 {
        self.latency_s + self.sec_per_byte * bytes as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ethernet_10g()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_is_free() {
        let m = CostModel::ethernet_10g();
        assert_eq!(m.collective_cost(1, 1_000_000), 0.0);
        assert_eq!(m.collective_cost(0, 1_000_000), 0.0);
    }

    #[test]
    fn cost_monotone_in_p_and_bytes() {
        let m = CostModel::ethernet_10g();
        assert!(m.collective_cost(4, 100) < m.collective_cost(64, 100));
        assert!(m.collective_cost(8, 100) < m.collective_cost(8, 1_000_000));
    }

    #[test]
    fn latency_term_is_logarithmic() {
        let m = CostModel {
            latency_s: 1.0,
            sec_per_byte: 0.0,
        };
        assert_eq!(m.collective_cost(2, 0), 1.0);
        assert_eq!(m.collective_cost(4, 0), 2.0);
        assert_eq!(m.collective_cost(64, 0), 6.0);
        // non-power-of-two rounds up
        assert_eq!(m.collective_cost(5, 0), 3.0);
    }

    #[test]
    fn bandwidth_term_matches_definition() {
        let m = CostModel {
            latency_s: 0.0,
            sec_per_byte: 2e-9,
        };
        let c = m.collective_cost(2, 500_000_000);
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_model_free() {
        assert_eq!(CostModel::zero().collective_cost(64, 1 << 30), 0.0);
        assert_eq!(CostModel::zero().p2p_cost(1 << 30), 0.0);
    }

    #[test]
    fn presets_ordered_sensibly() {
        let eth = CostModel::ethernet_10g();
        let ib = CostModel::infiniband();
        assert!(ib.latency_s < eth.latency_s);
        assert!(ib.sec_per_byte < eth.sec_per_byte);
    }
}
