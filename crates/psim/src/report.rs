//! Per-step timing reports and the simulated-makespan computation.

use crate::fault::FaultStats;
use jem_obs::Recorder;

/// Span path a pipeline step reports under (metric names are static; see
/// DESIGN.md §9). Known step names map to their own `psim/<step>` path;
/// retry and re-request steps carry a round suffix (`"subject sketch
/// retry 1"`) and fold into their base step by prefix, so a Fig.-7-style
/// breakdown aggregates replayed work with the step it replays. Names the
/// table does not know land in `"psim/other"`.
pub fn step_span_path(name: &str) -> &'static str {
    const PATHS: &[(&str, &str)] = &[
        ("input load", "psim/input load"),
        ("subject sketch", "psim/subject sketch"),
        ("sketch re-request", "psim/sketch re-request"),
        ("sketch gather", "psim/sketch gather"),
        ("global table build", "psim/global table build"),
        ("query map", "psim/query map"),
        ("result gather", "psim/result gather"),
    ];
    for (prefix, path) in PATHS {
        if name.starts_with(prefix) {
            return path;
        }
    }
    "psim/other"
}

/// Simulated seconds → recorder nanoseconds (saturating; times are finite
/// and non-negative by construction).
pub(crate) fn secs_to_ns(secs: f64) -> u64 {
    (secs * 1e9) as u64
}

/// Report one step into `rec`: the step-kind counter, per-rank compute
/// observations, comm bytes, and the critical-path span. Shared by the
/// world's live path and [`RunReport::record_to`].
pub(crate) fn record_step(step: &StepReport, rec: &dyn Recorder) {
    match step.kind {
        StepKind::Compute => {
            rec.add("psim.supersteps", 1);
            for &secs in &step.per_rank_secs {
                rec.observe("psim.rank_compute_ns", secs_to_ns(secs));
            }
        }
        StepKind::Communication => {
            rec.add("psim.collectives", 1);
            rec.add("psim.comm_bytes", step.bytes as u64);
        }
    }
    rec.span_ns(step_span_path(&step.name), secs_to_ns(step.critical_secs()));
}

/// Whether a step was rank-local compute or a collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// A superstep: every rank computed independently.
    Compute,
    /// A collective: ranks exchanged data (virtual cost).
    Communication,
}

/// Timing record of one step of a BSP run.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Step label supplied by the program.
    pub name: String,
    /// Step category.
    pub kind: StepKind,
    /// Per-rank compute seconds (empty for collectives).
    pub per_rank_secs: Vec<f64>,
    /// Virtual communication seconds (0 for compute steps).
    pub comm_secs: f64,
    /// Total payload bytes moved (collectives only).
    pub bytes: usize,
}

impl StepReport {
    /// This step's contribution to the simulated makespan: the slowest
    /// rank for compute steps, the modeled cost for collectives.
    pub fn critical_secs(&self) -> f64 {
        match self.kind {
            StepKind::Compute => self.per_rank_secs.iter().cloned().fold(0.0, f64::max),
            StepKind::Communication => self.comm_secs,
        }
    }

    /// Sum of all rank compute seconds (total work, not critical path).
    pub fn work_secs(&self) -> f64 {
        self.per_rank_secs.iter().sum()
    }
}

/// Complete timing record of a BSP run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Steps in execution order.
    pub steps: Vec<StepReport>,
    /// Number of ranks the run used.
    pub ranks: usize,
    /// Fault and recovery counters (all zero for a fault-free run). The
    /// world fills the fault side (crashes/corruption/straggles); a
    /// recovering driver fills the recovery side (retries/reassignments/
    /// re-requests).
    pub fault_stats: FaultStats,
}

impl RunReport {
    /// Simulated wall-clock: `Σ_steps critical_secs` — what a BSP MPI
    /// program's elapsed time converges to.
    pub fn makespan_secs(&self) -> f64 {
        self.steps.iter().map(StepReport::critical_secs).sum()
    }

    /// Critical-path compute seconds (max-rank per superstep, summed).
    pub fn compute_secs(&self) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.kind == StepKind::Compute)
            .map(StepReport::critical_secs)
            .sum()
    }

    /// Total modeled communication seconds.
    pub fn comm_secs(&self) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.kind == StepKind::Communication)
            .map(|s| s.comm_secs)
            .sum()
    }

    /// Fraction of the makespan spent communicating, in `[0, 1]`.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.makespan_secs();
        if total == 0.0 {
            0.0
        } else {
            self.comm_secs() / total
        }
    }

    /// Total bytes moved by collectives.
    pub fn total_bytes(&self) -> usize {
        self.steps.iter().map(|s| s.bytes).sum()
    }

    /// Replay the whole report into `rec`: every step (spans, superstep/
    /// collective counters, comm bytes, per-rank compute histogram) plus
    /// the fault and recovery counters. This is the bridge from the
    /// simulated Fig.-7-style breakdown to a metrics snapshot.
    ///
    /// A run executed while a recorder was installed has already reported
    /// all of this live (see [`crate::World`]); `record_to` exists to
    /// replay a stored or hand-built report into a *fresh* recorder —
    /// replaying into the same recorder the run reported to would double
    /// every value.
    pub fn record_to(&self, rec: &dyn Recorder) {
        for step in &self.steps {
            record_step(step, rec);
        }
        let f = &self.fault_stats;
        rec.add("psim.crashes", f.crashes as u64);
        rec.add("psim.corrupt_payloads", f.corrupt_payloads as u64);
        rec.add("psim.straggles", f.straggles as u64);
        rec.add("psim.retries", f.retries as u64);
        rec.add("psim.reassigned_blocks", f.reassigned_blocks as u64);
        rec.add("psim.re_requests", f.re_requests as u64);
    }

    /// Critical seconds of the step with the given name (0 if absent;
    /// summed over repeated names). Folds from +0.0 rather than `Sum`'s
    /// -0.0 identity so an absent step never prints as "-0.000000".
    pub fn step_secs(&self, name: &str) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.name == name)
            .map(StepReport::critical_secs)
            .fold(0.0, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(name: &str, per_rank: &[f64]) -> StepReport {
        StepReport {
            name: name.into(),
            kind: StepKind::Compute,
            per_rank_secs: per_rank.to_vec(),
            comm_secs: 0.0,
            bytes: 0,
        }
    }

    fn comm(name: &str, secs: f64, bytes: usize) -> StepReport {
        StepReport {
            name: name.into(),
            kind: StepKind::Communication,
            per_rank_secs: Vec::new(),
            comm_secs: secs,
            bytes,
        }
    }

    #[test]
    fn makespan_is_critical_path() {
        let r = RunReport {
            steps: vec![
                compute("a", &[1.0, 3.0, 2.0]),
                comm("x", 0.5, 100),
                compute("b", &[2.0, 1.0, 1.0]),
            ],
            ranks: 3,
            ..Default::default()
        };
        assert!((r.makespan_secs() - 5.5).abs() < 1e-12);
        assert!((r.compute_secs() - 5.0).abs() < 1e-12);
        assert!((r.comm_secs() - 0.5).abs() < 1e-12);
        assert!((r.comm_fraction() - 0.5 / 5.5).abs() < 1e-12);
        assert_eq!(r.total_bytes(), 100);
    }

    #[test]
    fn step_lookup_sums_repeats() {
        let r = RunReport {
            steps: vec![
                compute("map", &[1.0]),
                compute("map", &[2.0]),
                comm("gather", 0.25, 8),
            ],
            ranks: 1,
            ..Default::default()
        };
        assert!((r.step_secs("map") - 3.0).abs() < 1e-12);
        assert!((r.step_secs("gather") - 0.25).abs() < 1e-12);
        assert_eq!(r.step_secs("absent"), 0.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::default();
        assert_eq!(r.makespan_secs(), 0.0);
        assert_eq!(r.comm_fraction(), 0.0);
    }

    #[test]
    fn work_vs_critical() {
        let s = compute("a", &[1.0, 2.0, 3.0]);
        assert!((s.work_secs() - 6.0).abs() < 1e-12);
        assert!((s.critical_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn step_span_paths_fold_retries_into_base_steps() {
        assert_eq!(step_span_path("query map"), "psim/query map");
        assert_eq!(
            step_span_path("subject sketch retry 2"),
            "psim/subject sketch"
        );
        assert_eq!(
            step_span_path("sketch re-request 1"),
            "psim/sketch re-request"
        );
        assert_eq!(
            step_span_path("sketch re-request comm"),
            "psim/sketch re-request"
        );
        assert_eq!(step_span_path("sketch gather"), "psim/sketch gather");
        assert_eq!(step_span_path("warmup"), "psim/other");
    }

    #[test]
    fn record_to_replays_breakdown_and_fault_counters() {
        let mut r = RunReport {
            steps: vec![
                compute("query map", &[1.0, 3.0]),
                comm("result gather", 0.5, 256),
                compute("query map", &[0.0, 1.0]),
            ],
            ranks: 2,
            ..Default::default()
        };
        r.fault_stats.crashes = 1;
        r.fault_stats.re_requests = 4;
        let rec = jem_obs::MetricsRecorder::new();
        r.record_to(&rec);
        let s = rec.snapshot();
        assert_eq!(s.counter("psim.supersteps"), 2);
        assert_eq!(s.counter("psim.collectives"), 1);
        assert_eq!(s.counter("psim.comm_bytes"), 256);
        assert_eq!(s.counter("psim.crashes"), 1);
        assert_eq!(s.counter("psim.re_requests"), 4);
        assert_eq!(s.counter("psim.retries"), 0);
        // Repeated step names accumulate into one span (3s + 1s critical).
        let span = &s.spans["psim/query map"];
        assert_eq!(span.count, 2);
        assert_eq!(span.total_ns, 4_000_000_000);
        assert_eq!(s.spans["psim/result gather"].total_ns, 500_000_000);
        assert_eq!(s.histograms["psim.rank_compute_ns"].count, 4);
    }
}
