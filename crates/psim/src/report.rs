//! Per-step timing reports and the simulated-makespan computation.

use crate::fault::FaultStats;

/// Whether a step was rank-local compute or a collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// A superstep: every rank computed independently.
    Compute,
    /// A collective: ranks exchanged data (virtual cost).
    Communication,
}

/// Timing record of one step of a BSP run.
#[derive(Clone, Debug)]
pub struct StepReport {
    /// Step label supplied by the program.
    pub name: String,
    /// Step category.
    pub kind: StepKind,
    /// Per-rank compute seconds (empty for collectives).
    pub per_rank_secs: Vec<f64>,
    /// Virtual communication seconds (0 for compute steps).
    pub comm_secs: f64,
    /// Total payload bytes moved (collectives only).
    pub bytes: usize,
}

impl StepReport {
    /// This step's contribution to the simulated makespan: the slowest
    /// rank for compute steps, the modeled cost for collectives.
    pub fn critical_secs(&self) -> f64 {
        match self.kind {
            StepKind::Compute => self.per_rank_secs.iter().cloned().fold(0.0, f64::max),
            StepKind::Communication => self.comm_secs,
        }
    }

    /// Sum of all rank compute seconds (total work, not critical path).
    pub fn work_secs(&self) -> f64 {
        self.per_rank_secs.iter().sum()
    }
}

/// Complete timing record of a BSP run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Steps in execution order.
    pub steps: Vec<StepReport>,
    /// Number of ranks the run used.
    pub ranks: usize,
    /// Fault and recovery counters (all zero for a fault-free run). The
    /// world fills the fault side (crashes/corruption/straggles); a
    /// recovering driver fills the recovery side (retries/reassignments/
    /// re-requests).
    pub fault_stats: FaultStats,
}

impl RunReport {
    /// Simulated wall-clock: `Σ_steps critical_secs` — what a BSP MPI
    /// program's elapsed time converges to.
    pub fn makespan_secs(&self) -> f64 {
        self.steps.iter().map(StepReport::critical_secs).sum()
    }

    /// Critical-path compute seconds (max-rank per superstep, summed).
    pub fn compute_secs(&self) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.kind == StepKind::Compute)
            .map(StepReport::critical_secs)
            .sum()
    }

    /// Total modeled communication seconds.
    pub fn comm_secs(&self) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.kind == StepKind::Communication)
            .map(|s| s.comm_secs)
            .sum()
    }

    /// Fraction of the makespan spent communicating, in `[0, 1]`.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.makespan_secs();
        if total == 0.0 {
            0.0
        } else {
            self.comm_secs() / total
        }
    }

    /// Total bytes moved by collectives.
    pub fn total_bytes(&self) -> usize {
        self.steps.iter().map(|s| s.bytes).sum()
    }

    /// Critical seconds of the step with the given name (0 if absent;
    /// summed over repeated names). Folds from +0.0 rather than `Sum`'s
    /// -0.0 identity so an absent step never prints as "-0.000000".
    pub fn step_secs(&self, name: &str) -> f64 {
        self.steps
            .iter()
            .filter(|s| s.name == name)
            .map(StepReport::critical_secs)
            .fold(0.0, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(name: &str, per_rank: &[f64]) -> StepReport {
        StepReport {
            name: name.into(),
            kind: StepKind::Compute,
            per_rank_secs: per_rank.to_vec(),
            comm_secs: 0.0,
            bytes: 0,
        }
    }

    fn comm(name: &str, secs: f64, bytes: usize) -> StepReport {
        StepReport {
            name: name.into(),
            kind: StepKind::Communication,
            per_rank_secs: Vec::new(),
            comm_secs: secs,
            bytes,
        }
    }

    #[test]
    fn makespan_is_critical_path() {
        let r = RunReport {
            steps: vec![
                compute("a", &[1.0, 3.0, 2.0]),
                comm("x", 0.5, 100),
                compute("b", &[2.0, 1.0, 1.0]),
            ],
            ranks: 3,
            ..Default::default()
        };
        assert!((r.makespan_secs() - 5.5).abs() < 1e-12);
        assert!((r.compute_secs() - 5.0).abs() < 1e-12);
        assert!((r.comm_secs() - 0.5).abs() < 1e-12);
        assert!((r.comm_fraction() - 0.5 / 5.5).abs() < 1e-12);
        assert_eq!(r.total_bytes(), 100);
    }

    #[test]
    fn step_lookup_sums_repeats() {
        let r = RunReport {
            steps: vec![
                compute("map", &[1.0]),
                compute("map", &[2.0]),
                comm("gather", 0.25, 8),
            ],
            ranks: 1,
            ..Default::default()
        };
        assert!((r.step_secs("map") - 3.0).abs() < 1e-12);
        assert!((r.step_secs("gather") - 0.25).abs() < 1e-12);
        assert_eq!(r.step_secs("absent"), 0.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::default();
        assert_eq!(r.makespan_secs(), 0.0);
        assert_eq!(r.comm_fraction(), 0.0);
    }

    #[test]
    fn work_vs_critical() {
        let s = compute("a", &[1.0, 2.0, 3.0]);
        assert!((s.work_secs() - 6.0).abs() < 1e-12);
        assert!((s.critical_secs() - 3.0).abs() < 1e-12);
    }
}
