//! # jem-psim — a bulk-synchronous process simulator
//!
//! The paper evaluates JEM-mapper with MPI on a 9-node cluster. This crate
//! substitutes that testbed with a *simulated* distributed-memory machine so
//! the strong-scaling experiments (Table II, Figs. 7–8) can be reproduced on
//! any host, including a single-core one:
//!
//! * A [`World`] of `p` ranks executes **supersteps**. Each rank's work for a
//!   superstep runs as ordinary Rust code and its compute time is measured
//!   individually (ranks execute back-to-back by default, so measurements
//!   are not distorted by oversubscription; a threaded executor is available
//!   for hosts with enough cores).
//! * **Collectives** ([`World::allgatherv`], [`World::gather`],
//!   [`World::broadcast`]) move values between ranks and
//!   charge *virtual* communication time from a [`CostModel`] — the
//!   `τ·log p + μ·bytes` LogP-style model the paper itself uses for its
//!   complexity analysis (§III-C-1).
//! * The [`RunReport`] exposes per-step per-rank compute times, per-collective
//!   communication times, and the **simulated makespan**
//!   `Σ_steps (max_rank compute) + Σ collectives comm` — exactly the quantity
//!   a bulk-synchronous MPI program's wall clock converges to.
//!
//! The simulation is *work-conserving*: every byte a collective moves and
//! every instruction a rank executes is really moved/executed; only the
//! notion of them happening concurrently is modeled.

//!
//! ## Fault injection
//!
//! A [`FaultPlan`] schedules deterministic faults — fail-stop crashes,
//! corrupted payloads, stragglers — at `(superstep, rank)` coordinates.
//! [`World::superstep_faulty`] surfaces them as [`RankOutcome`] values
//! (never host panics) and charges straggler delays to the report, so a
//! recovering driver can be tested against degraded machines while the
//! [`RunReport`] shows the degraded makespan and the
//! [`FaultStats`] recovery counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod fault;
pub mod report;
pub mod world;

pub use cost::CostModel;
pub use fault::{corrupt_u64s, Fault, FaultKind, FaultPlan, FaultStats, RankOutcome};
pub use report::{step_span_path, RunReport, StepKind, StepReport};
pub use world::{block_range, ExecMode, World};
