//! Property-based tests for the BSP process simulator.

use jem_psim::{block_range, corrupt_u64s, CostModel, ExecMode, FaultPlan, RankOutcome, World};
use proptest::prelude::*;

proptest! {
    #[test]
    fn block_range_partitions(p in 1usize..80, n in 0usize..5000) {
        let w = World::new(p, CostModel::zero());
        let mut prev_end = 0;
        let mut total = 0;
        for r in 0..p {
            let range = w.block_range(n, r);
            // The method is a thin veneer over the one free-function
            // definition of the block formula.
            prop_assert_eq!(range.clone(), block_range(p, n, r));
            prop_assert_eq!(range.start, prev_end);
            prop_assert!(range.len() <= n / p + 1, "block too large");
            prop_assert!(n < p || range.len() >= n / p, "block too small");
            prev_end = range.end;
            total += range.len();
        }
        prop_assert_eq!(total, n);
        prop_assert_eq!(prev_end, n);
    }

    #[test]
    fn random_fault_plans_crash_exactly_the_planned_ranks(
        seed in any::<u64>(),
        p in 1usize..16,
        n_crashes in 0usize..16,
    ) {
        let steps = ["s0", "s1", "s2"];
        let plan = FaultPlan::random(seed, p, &steps, n_crashes, 1);
        // At least one survivor, always.
        prop_assert!(plan.crashed_ranks() < p);
        prop_assert_eq!(plan.crashed_ranks(), n_crashes.min(p - 1));
        let mut w = World::new(p, CostModel::zero()).with_faults(plan.clone());
        for step in steps {
            let outcomes = w.superstep_faulty(step, |r| r);
            for (r, o) in outcomes.iter().enumerate() {
                // A rank fails iff it is (now) dead; everyone else delivers
                // its value, possibly flagged corrupt.
                prop_assert_eq!(o.completed(), w.is_alive(r));
                if let RankOutcome::Ok(v) | RankOutcome::Corrupt(v) = o {
                    prop_assert_eq!(*v, r);
                }
            }
        }
        prop_assert_eq!(w.alive_ranks().len(), p - plan.crashed_ranks());
        prop_assert_eq!(w.fault_stats().crashes, plan.crashed_ranks());
    }

    #[test]
    fn corruption_is_deterministic_and_always_damages(
        stream in prop::collection::vec(any::<u64>(), 0..64),
        seed in any::<u64>(),
    ) {
        let mut a = stream.clone();
        let mut b = stream.clone();
        corrupt_u64s(&mut a, seed);
        corrupt_u64s(&mut b, seed);
        prop_assert_eq!(&a, &b, "same seed, same damage");
        prop_assert_ne!(a, stream, "damage must change the stream");
    }

    #[test]
    fn allgatherv_is_concatenation(
        locals in prop::collection::vec(prop::collection::vec(0u64..1000, 0..20), 1..10),
    ) {
        let p = locals.len();
        let mut w = World::new(p, CostModel::ethernet_10g());
        let expect: Vec<u64> = locals.iter().flatten().copied().collect();
        let total = expect.len();
        let got = w.allgatherv("g", locals);
        prop_assert_eq!(got, expect);
        let report = w.into_report();
        prop_assert_eq!(report.total_bytes(), total * 8);
        if p > 1 && total > 0 {
            prop_assert!(report.comm_secs() > 0.0);
        }
    }

    #[test]
    fn collective_cost_monotone(
        p1 in 2usize..64, p2 in 2usize..64,
        b1 in 0usize..1_000_000, b2 in 0usize..1_000_000,
    ) {
        let m = CostModel::ethernet_10g();
        let (p_lo, p_hi) = (p1.min(p2), p1.max(p2));
        let (b_lo, b_hi) = (b1.min(b2), b1.max(b2));
        prop_assert!(m.collective_cost(p_lo, b_lo) <= m.collective_cost(p_hi, b_lo) + 1e-15);
        prop_assert!(m.collective_cost(p_lo, b_lo) <= m.collective_cost(p_lo, b_hi) + 1e-15);
    }

    #[test]
    fn superstep_results_rank_ordered(p in 1usize..32, base in 0usize..100) {
        let mut w = World::new(p, CostModel::zero());
        let out = w.superstep("f", |r| r * 3 + base);
        prop_assert_eq!(out.len(), p);
        for (r, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, r * 3 + base);
        }
    }

    #[test]
    fn threaded_equals_sequential(p in 1usize..12) {
        let mut seq = World::new(p, CostModel::zero());
        let mut thr = World::new(p, CostModel::zero()).with_mode(ExecMode::Threaded);
        let a = seq.superstep("f", |r| (r, r * r));
        let b = thr.superstep("f", |r| (r, r * r));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn makespan_decomposition(p in 1usize..16, comm_bytes in 0usize..1_000_000) {
        let mut w = World::new(p, CostModel::ethernet_10g());
        w.superstep("a", |r| r);
        w.charge_comm("x", comm_bytes);
        w.superstep("b", |r| r + 1);
        let report = w.into_report();
        let sum = report.compute_secs() + report.comm_secs();
        prop_assert!((report.makespan_secs() - sum).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&report.comm_fraction()));
    }
}
