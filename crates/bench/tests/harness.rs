//! Tests of the experiment-harness glue (dataset preparation, truth
//! construction, tool evaluation) at micro scale.

use jem_baseline::{ClassicMinHashConfig, MashmapConfig};
use jem_bench::data::{baseline_pairs, eval_classic, eval_jem, eval_mashmap, PreparedDataset};
use jem_core::{MapperConfig, Mapping, ReadEnd};
use jem_seq::SeqRecord;
use jem_sim::{ContigProfile, DatasetId, DatasetSpec, GenomeProfile, HifiProfile};

fn micro_spec() -> DatasetSpec {
    DatasetSpec {
        id: DatasetId::EColi,
        genome: GenomeProfile::bacterial(80_000),
        contig: ContigProfile {
            mean_len: 4_000,
            std_len: 2_000,
            min_len: 500,
            gap_fraction: 0.05,
            error_rate: 0.0005,
        },
        hifi: HifiProfile {
            coverage: 3.0,
            ..Default::default()
        },
    }
}

#[test]
fn prepared_dataset_is_consistent() {
    let prep = PreparedDataset::generate(&micro_spec(), 11);
    assert_eq!(prep.subjects.len(), prep.ds.contigs.len());
    assert_eq!(prep.reads.len(), prep.ds.reads.len());
    assert_eq!(prep.name(), "E. coli");
    let stats = prep.ds.stats();
    assert_eq!(stats.n_contigs, prep.subjects.len());
    assert!(
        stats.query_bp > stats.subject_bp,
        "10x-ish coverage vs ~1x contigs"
    );
}

#[test]
fn truth_counts_match_segment_enumeration() {
    let prep = PreparedDataset::generate(&micro_spec(), 12);
    let ell = 1000;
    let bench = prep.truth(ell, 16);
    // Upper bound: 2 segments per read.
    assert!(bench.n_mappable_queries() <= prep.reads.len() * 2);
    // With 95% contig coverage, the vast majority of segments are mappable.
    let n_segments: usize = prep
        .reads
        .iter()
        .map(|r| if r.seq.len() > ell { 2 } else { 1 })
        .sum();
    assert!(
        bench.n_mappable_queries() * 10 >= n_segments * 8,
        "{} of {} segments mappable",
        bench.n_mappable_queries(),
        n_segments
    );
}

#[test]
fn all_three_evaluators_produce_sane_quality() {
    let prep = PreparedDataset::generate(&micro_spec(), 13);
    let config = MapperConfig::default();
    let bench = prep.truth(config.ell, config.k as u64);

    let jem = eval_jem(&prep, &config, &bench);
    assert!(jem.precision > 0.9, "JEM precision {}", jem.precision);
    assert!(jem.recall > 0.9, "JEM recall {}", jem.recall);
    assert!(jem.recall <= jem.precision + 1e-9);
    assert!(jem.build_secs >= 0.0 && jem.map_secs > 0.0);

    let mash = eval_mashmap(
        &prep,
        &MashmapConfig {
            k: 16,
            w: 10,
            ell: 1000,
            min_shared: 4,
        },
        &bench,
    );
    assert!(mash.precision > 0.9, "Mashmap precision {}", mash.precision);

    // Classic MinHash at low T is the known-weak point (Fig. 6).
    let classic = eval_classic(
        &prep,
        &ClassicMinHashConfig {
            k: 16,
            trials: 8,
            ell: 1000,
            seed: 1,
        },
        &bench,
    );
    assert!(
        classic.recall < jem.recall,
        "classic recall {} must trail JEM {} at T=8",
        classic.recall,
        jem.recall
    );
}

#[test]
fn baseline_pairs_formats_keys() {
    let reads = vec![SeqRecord::new("readA", b"ACGT".to_vec())];
    let mappings = vec![
        Mapping {
            read_idx: 0,
            end: ReadEnd::Prefix,
            subject: 3,
            hits: 5,
        },
        Mapping {
            read_idx: 0,
            end: ReadEnd::Suffix,
            subject: 1,
            hits: 2,
        },
    ];
    let pairs = baseline_pairs(&mappings, &reads, |id| format!("contig_{id}"));
    assert_eq!(
        pairs,
        vec![
            ("readA/prefix".to_string(), "contig_3".to_string()),
            ("readA/suffix".to_string(), "contig_1".to_string()),
        ]
    );
}
