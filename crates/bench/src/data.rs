//! Dataset preparation and tool evaluation glue shared by all experiments.

use jem_baseline::{ClassicMinHashConfig, ClassicMinHashMapper, MashmapConfig, MashmapMapper};
use jem_core::{mapping_pairs, JemMapper, MapperConfig, Mapping, ReadEnd};
use jem_eval::{Benchmark, MappingMetrics};
use jem_seq::SeqRecord;
use jem_sim::{contig_records, read_records, DatasetSpec, SegmentEnd, SimulatedDataset};
use std::time::Instant;

/// `JEM_SCALE` env knob (default 1.0).
pub fn env_scale() -> f64 {
    std::env::var("JEM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// `JEM_SEED` env knob (default 42).
pub fn env_seed() -> u64 {
    std::env::var("JEM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A generated dataset plus the record views the mappers consume.
pub struct PreparedDataset {
    /// The raw simulated dataset (with ground truth).
    pub ds: SimulatedDataset,
    /// Subject records (contigs).
    pub subjects: Vec<SeqRecord>,
    /// Query records (long reads).
    pub reads: Vec<SeqRecord>,
}

impl PreparedDataset {
    /// Generate from a spec.
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Self {
        let ds = spec.generate(seed);
        let subjects = contig_records(&ds.contigs);
        let reads = read_records(&ds.reads);
        PreparedDataset {
            ds,
            subjects,
            reads,
        }
    }

    /// Human-readable dataset name.
    pub fn name(&self) -> &'static str {
        self.ds.spec.id.name()
    }

    /// Build the Fig. 4 benchmark from simulated truth coordinates.
    ///
    /// Enumerates exactly the segments the mappers will emit (prefix only
    /// for reads no longer than ℓ, prefix + suffix otherwise).
    pub fn truth(&self, ell: usize, k: u64) -> Benchmark {
        let mut queries = Vec::with_capacity(self.ds.reads.len() * 2);
        for r in &self.ds.reads {
            if r.seq.is_empty() {
                continue;
            }
            let mut push = |end: SegmentEnd, label: &str| {
                let (s, e) = r.segment_ref_range(end, ell);
                queries.push((format!("{}/{label}", r.id), (s as u64, e as u64)));
            };
            push(SegmentEnd::Prefix, "prefix");
            if r.seq.len() > ell {
                push(SegmentEnd::Suffix, "suffix");
            }
        }
        let subjects: Vec<(String, (u64, u64))> = self
            .ds
            .contigs
            .iter()
            .map(|c| (c.id.clone(), (c.ref_start as u64, c.ref_end as u64)))
            .collect();
        Benchmark::from_coordinates(&queries, &subjects, k)
    }
}

/// Quality + timing of one tool on one dataset.
#[derive(Clone, Debug, serde::Serialize)]
pub struct QualityResult {
    /// Tool label.
    pub tool: String,
    /// Dataset name.
    pub dataset: String,
    /// Classification counts.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// `TP / (TP+FP)`.
    pub precision: f64,
    /// `TP / (TP+FN)`.
    pub recall: f64,
    /// Wall seconds for index build.
    pub build_secs: f64,
    /// Wall seconds for query mapping.
    pub map_secs: f64,
}

fn quality(
    tool: &str,
    prep: &PreparedDataset,
    pairs: Vec<(String, String)>,
    bench: &Benchmark,
    build_secs: f64,
    map_secs: f64,
) -> QualityResult {
    let m = MappingMetrics::classify(&pairs, bench);
    QualityResult {
        tool: tool.to_string(),
        dataset: prep.name().to_string(),
        tp: m.tp,
        fp: m.fp,
        fn_: m.fn_,
        precision: m.precision(),
        recall: m.recall(),
        build_secs,
        map_secs,
    }
}

/// Run JEM-mapper on a dataset and score it against the benchmark.
pub fn eval_jem(prep: &PreparedDataset, config: &MapperConfig, bench: &Benchmark) -> QualityResult {
    let t0 = Instant::now();
    let mapper = JemMapper::build(&prep.subjects, config);
    let build = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mappings = mapper.map_reads(&prep.reads);
    let map = t1.elapsed().as_secs_f64();
    let pairs = mapping_pairs(&mappings, &prep.reads, &mapper);
    quality("JEM-mapper", prep, pairs, bench, build, map)
}

/// Run JEM-mapper under an explicit sketch scheme and score it.
pub fn eval_jem_scheme(
    prep: &PreparedDataset,
    config: &MapperConfig,
    scheme: jem_sketch::SketchScheme,
    bench: &Benchmark,
    label: &str,
) -> QualityResult {
    let t0 = Instant::now();
    let mapper = JemMapper::build_with_scheme(&prep.subjects, config, scheme);
    let build = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mappings = mapper.map_reads(&prep.reads);
    let map = t1.elapsed().as_secs_f64();
    let pairs = mapping_pairs(&mappings, &prep.reads, &mapper);
    quality(label, prep, pairs, bench, build, map)
}

/// Run the Mashmap baseline and score it.
pub fn eval_mashmap(
    prep: &PreparedDataset,
    config: &MashmapConfig,
    bench: &Benchmark,
) -> QualityResult {
    let t0 = Instant::now();
    let mapper = MashmapMapper::build(prep.subjects.clone(), config);
    let build = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mappings = mapper.map_reads(&prep.reads);
    let map = t1.elapsed().as_secs_f64();
    let pairs = baseline_pairs(&mappings, &prep.reads, |id| {
        mapper.subject_name(id).to_string()
    });
    quality("Mashmap", prep, pairs, bench, build, map)
}

/// Run the classical-MinHash baseline and score it.
pub fn eval_classic(
    prep: &PreparedDataset,
    config: &ClassicMinHashConfig,
    bench: &Benchmark,
) -> QualityResult {
    let t0 = Instant::now();
    let mapper = ClassicMinHashMapper::build(&prep.subjects, config);
    let build = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mappings = mapper.map_reads(&prep.reads);
    let map = t1.elapsed().as_secs_f64();
    let pairs = baseline_pairs(&mappings, &prep.reads, |id| {
        prep.subjects[id as usize].id.clone()
    });
    quality("classical MinHash", prep, pairs, bench, build, map)
}

/// Convert mappings to `(query, subject)` string pairs.
pub fn baseline_pairs(
    mappings: &[Mapping],
    reads: &[SeqRecord],
    subject_name: impl Fn(u32) -> String,
) -> Vec<(String, String)> {
    mappings
        .iter()
        .map(|m| {
            let end = match m.end {
                ReadEnd::Prefix => "prefix",
                ReadEnd::Suffix => "suffix",
            };
            (
                format!("{}/{end}", reads[m.read_idx as usize].id),
                subject_name(m.subject),
            )
        })
        .collect()
}
