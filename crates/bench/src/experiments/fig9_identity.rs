//! Fig. 9 — percent-identity distribution of JEM-mapper's mappings on the
//! O. sativa (real-data analogue) input, computed with the workspace's
//! alignment substrate (the paper uses BLAST here).

use crate::data::{env_seed, PreparedDataset};
use crate::output::{print_table, save_json};
use jem_core::{JemMapper, ReadEnd};
use jem_eval::{percent_identity, IdentityHistogram};
use jem_sim::DatasetId;

/// Cap on aligned pairs (fitting alignment is quadratic; a uniform sample
/// of this size pins the distribution tightly).
pub const MAX_PAIRS: usize = 300;

/// Map the O. sativa analogue and histogram the mapping identities.
pub fn run() {
    let config = super::jem_config();
    let prep = PreparedDataset::generate(&super::spec(DatasetId::OSativaChr8), env_seed());
    let mapper = JemMapper::build(&prep.subjects, &config);
    let mappings = mapper.map_reads(&prep.reads);
    println!("{} mappings produced", mappings.len());

    let stride = (mappings.len() / MAX_PAIRS).max(1);
    let mut hist = IdentityHistogram::fig9_bins();
    for m in mappings.iter().step_by(stride) {
        let read = &prep.reads[m.read_idx as usize];
        let n = read.seq.len().min(config.ell);
        let segment = match m.end {
            ReadEnd::Prefix => &read.seq[..n],
            ReadEnd::Suffix => &read.seq[read.seq.len() - n..],
        };
        let contig = &prep.subjects[m.subject as usize].seq;
        hist.add(percent_identity(segment, contig));
    }

    let labels = ["[80,85)", "[85,90)", "[90,95)", "[95,100]"];
    let mut rows: Vec<Vec<String>> = vec![vec!["< 80".to_string(), hist.below.to_string()]];
    for (label, count) in labels.iter().zip(&hist.counts) {
        rows.push(vec![label.to_string(), count.to_string()]);
    }
    print_table(
        "Fig. 9 — percent identity of mapped (segment, contig) pairs (O. sativa analogue)",
        &["Identity bin", "Count"],
        &rows,
    );
    println!(
        "fraction >= 95%: {:.1}%  (paper: most mass in 95-100%)",
        hist.fraction_at_or_above(95.0) * 100.0
    );
    save_json(
        "fig9",
        &serde_json::json!({
            "sampled_pairs": hist.total(),
            "below_80": hist.below,
            "bins": labels,
            "counts": hist.counts,
            "fraction_ge_95": hist.fraction_at_or_above(95.0),
        }),
    );
}
