//! Table I — input dataset statistics.

use crate::data::{env_seed, PreparedDataset};
use crate::output::{print_table, save_json};

/// Generate every dataset analogue and print its Table I row.
pub fn run() {
    let specs = super::all_specs();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for spec in &specs {
        let prep = PreparedDataset::generate(spec, env_seed());
        let s = prep.ds.stats();
        rows.push(vec![
            s.name.to_string(),
            s.genome_bp.to_string(),
            s.n_contigs.to_string(),
            s.subject_bp.to_string(),
            format!("{:.0} ± {:.0}", s.contig_mean, s.contig_std),
            s.n_reads.to_string(),
            s.query_bp.to_string(),
            format!("{:.0} ± {:.0}", s.read_mean, s.read_std),
        ]);
        json.push(serde_json::json!({
            "name": s.name,
            "genome_bp": s.genome_bp,
            "n_contigs": s.n_contigs,
            "subject_bp": s.subject_bp,
            "contig_mean": s.contig_mean,
            "contig_std": s.contig_std,
            "n_reads": s.n_reads,
            "query_bp": s.query_bp,
            "read_mean": s.read_mean,
            "read_std": s.read_std,
        }));
    }
    print_table(
        &format!(
            "Table I — dataset statistics (scale {})",
            crate::env_scale()
        ),
        &[
            "Input",
            "Genome (bp)",
            "No. contigs",
            "Subject bp",
            "Contig len (avg ± sd)",
            "No. reads",
            "Query bp",
            "Read len (avg ± sd)",
        ],
        &rows,
    );
    save_json("table1", &json);
}
