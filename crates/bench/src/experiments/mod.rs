//! One module per table/figure of the paper's evaluation section.

pub mod ablations;
pub mod ext_contained;
pub mod ext_topk;
pub mod fig5_quality;
pub mod fig6_trials;
pub mod fig7_breakdown;
pub mod fig8_comm;
pub mod fig9_identity;
pub mod table1_datasets;
pub mod table2_scaling;

use jem_baseline::MashmapConfig;
use jem_core::MapperConfig;
use jem_sim::{paper_analogues, DatasetId, DatasetSpec};

/// The paper's default JEM configuration (§IV-A-c).
pub fn jem_config() -> MapperConfig {
    MapperConfig::default()
}

/// Mashmap configured per its own parameterization rule.
///
/// Mashmap derives its window from the sketch-size formula (Jain et al.
/// 2017): for ℓ = 1000 bp segments at HiFi identity the sketch size is
/// s ≈ 200, giving `w = 2ℓ/s ≈ 10` — an order of magnitude denser minimizer
/// sampling than JEM's `w = 100`. That density is what makes the real
/// Mashmap's per-query work (position lists + local-intersection windows)
/// much heavier than JEM's, and is the source of the runtime gap in
/// Table II. `min_shared` plays the role of Mashmap's stage-1 count cutoff
/// `m = ⌈s·τ⌉`.
pub fn mashmap_config() -> MashmapConfig {
    MashmapConfig {
        k: 16,
        w: 10,
        ell: 1000,
        min_shared: 4,
    }
}

/// All dataset analogues at the environment scale.
pub fn all_specs() -> Vec<DatasetSpec> {
    paper_analogues(crate::env_scale())
}

/// The seven simulated inputs (Fig. 5 uses these; O. sativa is "real").
pub fn simulated_specs() -> Vec<DatasetSpec> {
    all_specs()
        .into_iter()
        .filter(|s| s.id != DatasetId::OSativaChr8)
        .collect()
}

/// The six larger inputs used in the performance study (Table II, Figs. 7–8).
pub fn performance_specs() -> Vec<DatasetSpec> {
    all_specs()
        .into_iter()
        .filter(|s| !matches!(s.id, DatasetId::EColi | DatasetId::PAeruginosa))
        .collect()
}

/// Fetch one spec by id.
pub fn spec(id: DatasetId) -> DatasetSpec {
    all_specs()
        .into_iter()
        .find(|s| s.id == id)
        .expect("known dataset id")
}
