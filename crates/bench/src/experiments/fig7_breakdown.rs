//! Fig. 7 — (a) runtime breakdown by pipeline step at p = 16;
//! (b) querying throughput as a function of p.

use crate::data::{env_seed, PreparedDataset};
use crate::output::{f, print_table, save_json};
use jem_core::run_distributed;
use jem_psim::{CostModel, ExecMode};

/// Process counts for the throughput series.
pub const PROCS: &[usize] = &[4, 8, 16, 32, 64];

/// Run both panels over the performance inputs.
pub fn run() {
    let config = super::jem_config();
    let cost = CostModel::ethernet_10g();
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut results = Vec::new();
    for spec in super::performance_specs() {
        let prep = PreparedDataset::generate(&spec, env_seed());

        // (a) breakdown at p = 16.
        let outcome = run_distributed(
            &prep.subjects,
            &prep.reads,
            &config,
            16,
            cost,
            ExecMode::Sequential,
        );
        let b = outcome.breakdown();
        rows_a.push(vec![
            prep.name().to_string(),
            f(b.input_load, 4),
            f(b.subject_sketch, 4),
            f(b.sketch_gather + b.table_build, 4),
            f(b.query_map, 4),
            f(outcome.report.makespan_secs(), 4),
        ]);

        // (b) throughput vs p.
        let mut series = Vec::new();
        for &p in PROCS {
            let o = run_distributed(
                &prep.subjects,
                &prep.reads,
                &config,
                p,
                cost,
                ExecMode::Sequential,
            );
            series.push(o.query_throughput());
        }
        let mut row = vec![prep.name().to_string()];
        row.extend(series.iter().map(|t| f(*t, 0)));
        rows_b.push(row);
        results.push(serde_json::json!({
            "dataset": prep.name(),
            "breakdown_p16": {
                "input_load": b.input_load,
                "subject_sketch": b.subject_sketch,
                "gather_and_table": b.sketch_gather + b.table_build,
                "query_map": b.query_map,
            },
            "procs": PROCS,
            "throughput_segments_per_sec": series,
        }));
    }
    print_table(
        "Fig. 7a — runtime breakdown by step at p=16 (seconds)",
        &[
            "Input",
            "Input load",
            "Subject sketch",
            "Gather+table",
            "Query map",
            "Total",
        ],
        &rows_a,
    );
    print_table(
        "Fig. 7b — querying throughput (segments/sec)",
        &["Input", "p=4", "p=8", "p=16", "p=32", "p=64"],
        &rows_b,
    );
    save_json("fig7", &results);
}
