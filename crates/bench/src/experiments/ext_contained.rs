//! Extension experiment — contained-contig recovery by whole-read tiling.
//!
//! End-segment mapping cannot see contigs contained entirely in a read's
//! interior (paper §III-B-1's caveat). This experiment counts, over a
//! simulated dataset, how many true (read, contig) incidences fall into
//! three classes — end-visible, interior-only, unreachable — and measures
//! how many interior-only contigs the tiling extension
//! (`JemMapper::map_read_tiled`) actually recovers.

use crate::data::{env_seed, PreparedDataset};
use crate::output::{pct, print_table, save_json};
use jem_core::JemMapper;
use jem_sim::DatasetId;
use std::collections::HashSet;

/// Run the contained-contig recovery study on the C. elegans analogue
/// (short contigs + 10 kbp reads make interior containment common).
pub fn run() {
    let config = super::jem_config();
    let prep = PreparedDataset::generate(&super::spec(DatasetId::CElegans), env_seed());
    let mapper = JemMapper::build(&prep.subjects, &config);

    let mut interior_total = 0usize;
    let mut interior_recovered = 0usize;
    let mut end_visible = 0usize;
    // Cap the study for runtime (tiling is ~read_len/ℓ× the end-segment work).
    let sample: Vec<_> = prep.ds.reads.iter().take(400).collect();
    for read in &sample {
        // Interior-only truth: contigs whose genome interval lies strictly
        // inside the read's interval, at least ℓ away from both read ends.
        let lo = read.ref_start + config.ell;
        let hi = read.ref_end.saturating_sub(config.ell);
        let interior: Vec<&str> = prep
            .ds
            .contigs
            .iter()
            .filter(|c| c.ref_start >= lo && c.ref_end <= hi)
            .map(|c| c.id.as_str())
            .collect();
        let visible = prep
            .ds
            .contigs
            .iter()
            .filter(|c| {
                let overlaps_prefix =
                    c.ref_start < read.ref_start + config.ell && c.ref_end > read.ref_start;
                let overlaps_suffix =
                    c.ref_start < read.ref_end && c.ref_end + config.ell > read.ref_end;
                overlaps_prefix || overlaps_suffix
            })
            .count();
        end_visible += visible;
        if interior.is_empty() {
            continue;
        }
        interior_total += interior.len();
        let found: HashSet<&str> = mapper
            .contained_hits(&read.seq, config.ell / 2)
            .iter()
            .map(|h| prep.subjects[h.subject as usize].id.as_str())
            .collect();
        interior_recovered += interior.iter().filter(|c| found.contains(*c)).count();
    }

    let recovery = if interior_total == 0 {
        0.0
    } else {
        interior_recovered as f64 / interior_total as f64
    };
    print_table(
        "Extension — contained-contig recovery by whole-read tiling (C. elegans analogue)",
        &["Metric", "Value"],
        &[
            vec!["reads sampled".into(), sample.len().to_string()],
            vec![
                "end-visible contig incidences".into(),
                end_visible.to_string(),
            ],
            vec![
                "interior-only incidences (invisible to end segments)".into(),
                interior_total.to_string(),
            ],
            vec!["recovered by tiling".into(), interior_recovered.to_string()],
            vec!["tiling recovery rate".into(), pct(recovery)],
        ],
    );
    save_json(
        "ext_contained",
        &serde_json::json!({
            "reads_sampled": sample.len(),
            "end_visible": end_visible,
            "interior_only": interior_total,
            "recovered": interior_recovered,
            "recovery_rate": recovery,
        }),
    );
}
