//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **window size `w`** — quality vs sketch-table size vs mapping time;
//! 2. **lazy vs naive hit counter** — the §III-C implementation note,
//!    measured at workload scale (n subjects, per-query reset cost);
//! 3. **network cost model** — how the Fig. 8 communication fraction moves
//!    between a 10 GbE-class and an InfiniBand-class interconnect.

use crate::data::{env_seed, eval_jem, PreparedDataset};
use crate::output::{f, pct, print_table, save_json};
use jem_core::{run_distributed, JemMapper, MapperConfig};
use jem_index::{HitCounter, LazyHitCounter, NaiveHitCounter};
use jem_psim::{CostModel, ExecMode};
use jem_sim::DatasetId;
use std::time::Instant;

/// Run all three ablations.
pub fn run() {
    let base = super::jem_config();
    let prep = PreparedDataset::generate(&super::spec(DatasetId::CElegans), env_seed());
    let bench = prep.truth(base.ell, base.k as u64);
    let mut results = serde_json::Map::new();

    // --- (1) window size w.
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for w in [10usize, 25, 50, 100, 200, 400] {
        let config = MapperConfig { w, ..base };
        let q = eval_jem(&prep, &config, &bench);
        let entries = JemMapper::build(&prep.subjects, &config)
            .table()
            .entry_count();
        rows.push(vec![
            w.to_string(),
            pct(q.precision),
            pct(q.recall),
            entries.to_string(),
            f(q.map_secs, 3),
        ]);
        series.push(serde_json::json!({
            "w": w, "precision": q.precision, "recall": q.recall,
            "table_entries": entries, "map_secs": q.map_secs,
        }));
    }
    print_table(
        "Ablation 1 — minimizer window size w (C. elegans analogue)",
        &["w", "Precision", "Recall", "Table entries", "Map secs"],
        &rows,
    );
    results.insert("window_sweep".into(), serde_json::Value::Array(series));

    // --- (2) lazy vs naive hit counter at workload scale.
    let n_subjects = prep.subjects.len() * 64; // emulate an unscaled contig set
    let queries = 3_000u64;
    let hits_per_query = 25;
    let drive = |counter: &mut dyn HitCounter| {
        let mut state = 7u64;
        for q in 0..queries {
            for _ in 0..hits_per_query {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                counter.record(q, (state % n_subjects as u64) as u32);
            }
            std::hint::black_box(counter.best(q));
        }
    };
    let t0 = Instant::now();
    drive(&mut LazyHitCounter::new(n_subjects));
    let lazy_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    drive(&mut NaiveHitCounter::new(n_subjects));
    let naive_secs = t1.elapsed().as_secs_f64();
    print_table(
        "Ablation 2 — lazy-update vs reset-per-query hit counting",
        &["Counter", "Subjects", "Queries", "Seconds"],
        &[
            vec![
                "lazy (paper)".into(),
                n_subjects.to_string(),
                queries.to_string(),
                f(lazy_secs, 4),
            ],
            vec![
                "naive reset".into(),
                n_subjects.to_string(),
                queries.to_string(),
                f(naive_secs, 4),
            ],
        ],
    );
    println!("lazy speedup: {:.1}x", naive_secs / lazy_secs.max(1e-12));
    results.insert(
        "hit_counter".into(),
        serde_json::json!({
            "subjects": n_subjects, "queries": queries,
            "lazy_secs": lazy_secs, "naive_secs": naive_secs,
        }),
    );

    // --- (3) interconnect sensitivity of the comm fraction at p = 64.
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (label, cost) in [
        ("10GbE", CostModel::ethernet_10g()),
        ("InfiniBand", CostModel::infiniband()),
    ] {
        let o = run_distributed(
            &prep.subjects,
            &prep.reads,
            &base,
            64,
            cost,
            ExecMode::Sequential,
        );
        let frac = o.report.comm_fraction();
        rows.push(vec![label.to_string(), pct(1.0 - frac), pct(frac)]);
        series.push(serde_json::json!({"network": label, "comm_fraction": frac}));
    }
    print_table(
        "Ablation 3 — interconnect class vs communication share (p = 64)",
        &["Network", "Computation", "Communication"],
        &rows,
    );
    results.insert("network".into(), serde_json::Value::Array(series));

    // --- (4) sketch scheme: minimizers vs closed syncmers at matched
    // density, under noisy (ONT-class, 2%) reads where the syncmer
    // conservation property matters. HiFi reads (0.1%) are too clean to
    // separate the schemes.
    let noisy_spec = {
        let mut s = super::spec(DatasetId::HumanChr7);
        s.hifi.error_rate = 0.02;
        s
    };
    let noisy = PreparedDataset::generate(&noisy_spec, env_seed() + 7);
    // Matched density 2/6: minimizer w = 5 vs closed syncmer s = k − 5.
    let dense_cfg = MapperConfig {
        k: 16,
        w: 5,
        ..base
    };
    let noisy_bench = noisy.truth(dense_cfg.ell, dense_cfg.k as u64);
    let mini = crate::data::eval_jem_scheme(
        &noisy,
        &dense_cfg,
        jem_sketch::SketchScheme::Minimizer { w: 5 },
        &noisy_bench,
        "minimizer w=5",
    );
    let sync = crate::data::eval_jem_scheme(
        &noisy,
        &dense_cfg,
        jem_sketch::SketchScheme::ClosedSyncmer { s: 11 },
        &noisy_bench,
        "closed syncmer s=11",
    );
    print_table(
        "Ablation 4 — sketch scheme under 2% read error (matched density 1/3)",
        &["Scheme", "Precision", "Recall", "Map secs"],
        &[
            vec![
                mini.tool.clone(),
                pct(mini.precision),
                pct(mini.recall),
                f(mini.map_secs, 3),
            ],
            vec![
                sync.tool.clone(),
                pct(sync.precision),
                pct(sync.recall),
                f(sync.map_secs, 3),
            ],
        ],
    );
    results.insert(
        "scheme".into(),
        serde_json::json!({"minimizer": mini, "syncmer": sync}),
    );

    // --- (5) hit-support threshold: precision/recall trade-off when
    // mappings below a minimum trial-hit count are suppressed. The paper
    // reports every best hit (threshold 1); this quantifies how much
    // precision a support cutoff buys and what recall it costs.
    let mapper = JemMapper::build(&prep.subjects, &base);
    let mappings = mapper.map_reads(&prep.reads);
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for min_hits in [1u32, 2, 3, 5, 10, 15] {
        let pairs: Vec<(String, String)> = mappings
            .iter()
            .filter(|m| m.hits >= min_hits)
            .map(|m| {
                (
                    m.query_key(&prep.reads),
                    mapper.subject_name(m.subject).to_string(),
                )
            })
            .collect();
        let m = jem_eval::MappingMetrics::classify(&pairs, &bench);
        rows.push(vec![
            min_hits.to_string(),
            pct(m.precision()),
            pct(m.recall()),
            pairs.len().to_string(),
        ]);
        series.push(serde_json::json!({
            "min_hits": min_hits,
            "precision": m.precision(),
            "recall": m.recall(),
            "reported": pairs.len(),
        }));
    }
    print_table(
        "Ablation 5 — minimum trial-hit support vs quality (T = 30)",
        &["min hits", "Precision", "Recall", "Mappings reported"],
        &rows,
    );
    results.insert("hit_threshold".into(), serde_json::Value::Array(series));

    save_json("ablations", &serde_json::Value::Object(results));
}
