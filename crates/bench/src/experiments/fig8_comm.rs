//! Fig. 8 — computation vs communication fraction for Human chr 7 and
//! B. splendens as p grows.

use crate::data::{env_seed, PreparedDataset};
use crate::output::{print_table, save_json};
use jem_core::run_distributed;
use jem_psim::{CostModel, ExecMode};
use jem_sim::DatasetId;

/// Process counts swept by the paper's figure.
pub const PROCS: &[usize] = &[4, 8, 16, 32, 64];

/// Run the computation/communication split for the two figure inputs.
pub fn run() {
    let config = super::jem_config();
    let cost = CostModel::ethernet_10g();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for id in [DatasetId::HumanChr7, DatasetId::BSplendens] {
        let prep = PreparedDataset::generate(&super::spec(id), env_seed());
        let mut series = Vec::new();
        for &p in PROCS {
            let o = run_distributed(
                &prep.subjects,
                &prep.reads,
                &config,
                p,
                cost,
                ExecMode::Sequential,
            );
            let comm = o.report.comm_fraction();
            series.push(comm);
            rows.push(vec![
                prep.name().to_string(),
                p.to_string(),
                format!("{:.2}%", (1.0 - comm) * 100.0),
                format!("{:.2}%", comm * 100.0),
            ]);
        }
        results.push(serde_json::json!({
            "dataset": prep.name(),
            "procs": PROCS,
            "comm_fraction": series,
        }));
    }
    print_table(
        "Fig. 8 — computation vs communication time",
        &["Input", "p", "Computation", "Communication"],
        &rows,
    );
    save_json("fig8", &results);
}
