//! Fig. 6 — effect of the number of trials `T` on quality, JEM-mapper vs
//! classical MinHash, on the B. splendens analogue.

use crate::data::{env_seed, eval_classic, eval_jem, PreparedDataset};
use crate::output::{pct, print_table, save_json};
use jem_baseline::ClassicMinHashConfig;
use jem_sim::DatasetId;

/// Trial counts swept by the paper's figure.
pub const TRIALS: &[usize] = &[5, 10, 20, 30, 50, 100, 150];

/// Sweep `T` for both schemes and print precision/recall per point.
pub fn run() {
    let spec = super::spec(DatasetId::BSplendens);
    let prep = PreparedDataset::generate(&spec, env_seed());
    let base = super::jem_config();
    let bench = prep.truth(base.ell, base.k as u64);
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &t in TRIALS {
        let jem = eval_jem(&prep, &base.with_trials(t), &bench);
        let classic_cfg = ClassicMinHashConfig {
            k: base.k,
            trials: t,
            ell: base.ell,
            seed: base.seed,
        };
        let classic = eval_classic(&prep, &classic_cfg, &bench);
        println!(
            "T={t}: JEM p={} r={} | classical MinHash p={} r={}",
            pct(jem.precision),
            pct(jem.recall),
            pct(classic.precision),
            pct(classic.recall)
        );
        rows.push(vec![
            t.to_string(),
            pct(jem.precision),
            pct(jem.recall),
            pct(classic.precision),
            pct(classic.recall),
        ]);
        results.push(serde_json::json!({
            "trials": t,
            "jem": jem,
            "classic": classic,
        }));
    }
    print_table(
        "Fig. 6 — quality vs number of trials T (B. splendens analogue)",
        &[
            "T",
            "JEM precision",
            "JEM recall",
            "MinHash precision",
            "MinHash recall",
        ],
        &rows,
    );
    save_json("fig6", &results);
}
