//! Table II — strong scaling of JEM-mapper (p = 4..64 simulated ranks)
//! against Mashmap on 64 threads.

use crate::data::{env_seed, PreparedDataset};
use crate::output::{f, print_table, save_json};
use jem_baseline::run_mashmap_threaded;
use jem_core::run_distributed;
use jem_psim::{CostModel, ExecMode};

/// Process counts swept by the paper's table.
pub const PROCS: &[usize] = &[4, 8, 16, 32, 64];

/// Run the strong-scaling study on the six larger inputs.
pub fn run() {
    let config = super::jem_config();
    let mash_cfg = super::mashmap_config();
    let cost = CostModel::ethernet_10g();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for spec in super::performance_specs() {
        let prep = PreparedDataset::generate(&spec, env_seed());
        // Untimed warm-up so the p=4 row doesn't absorb allocator/page-cache
        // first-touch costs.
        let _ = run_distributed(
            &prep.subjects,
            &prep.reads,
            &config,
            2,
            cost,
            ExecMode::Sequential,
        );
        let mut jem_secs = Vec::new();
        for &p in PROCS {
            let best = (0..2)
                .map(|_| {
                    run_distributed(
                        &prep.subjects,
                        &prep.reads,
                        &config,
                        p,
                        cost,
                        ExecMode::Sequential,
                    )
                    .report
                    .makespan_secs()
                })
                .fold(f64::INFINITY, f64::min);
            jem_secs.push(best);
        }
        // Two measurements, keep the min: single-shot wall times on a busy
        // host can double; the min is the stable estimator.
        let mash64 = (0..2)
            .map(|_| {
                let (_, report) = run_mashmap_threaded(
                    &prep.subjects,
                    &prep.reads,
                    &mash_cfg,
                    64,
                    ExecMode::Sequential,
                );
                report.makespan_secs()
            })
            .fold(f64::INFINITY, f64::min);
        let speedup_vs_mash = mash64 / jem_secs[PROCS.len() - 1];
        let rel_speedup_64 = jem_secs[0] / jem_secs[PROCS.len() - 1];
        println!(
            "{}: JEM p=64 {}s, Mashmap t=64 {}s (speedup {:.2}x, rel. p4->p64 {:.2}x)",
            prep.name(),
            f(jem_secs[PROCS.len() - 1], 3),
            f(mash64, 3),
            speedup_vs_mash,
            rel_speedup_64
        );
        let mut row = vec![prep.name().to_string()];
        row.extend(jem_secs.iter().map(|s| f(*s, 3)));
        row.push(f(mash64, 3));
        row.push(format!("{speedup_vs_mash:.2}x"));
        rows.push(row);
        results.push(serde_json::json!({
            "dataset": prep.name(),
            "procs": PROCS,
            "jem_makespan_secs": jem_secs,
            "mashmap_t64_secs": mash64,
            "speedup_vs_mashmap_at_64": speedup_vs_mash,
        }));
    }
    print_table(
        "Table II — strong scaling (simulated makespan, seconds)",
        &[
            "Input",
            "p=4",
            "p=8",
            "p=16",
            "p=32",
            "p=64",
            "Mashmap t=64",
            "Speedup @64",
        ],
        &rows,
    );
    save_json("table2", &results);
}
