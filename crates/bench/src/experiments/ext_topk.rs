//! Extension experiment — top-x hit reporting.
//!
//! The paper (§IV-C): "if we are to extend our method to report a fixed
//! number, say top x hits per read, then several of the missing contig
//! hits could possibly be recovered." This experiment quantifies that:
//! recall when a query counts as recovered if *any* of its top-x candidates
//! is a true subject, for x = 1..5, on the B. splendens analogue.

use crate::data::{env_seed, PreparedDataset};
use crate::output::{pct, print_table, save_json};
use jem_core::{make_segments, JemMapper};
use jem_sim::DatasetId;

/// Candidate-list depths swept.
pub const TOP_X: &[usize] = &[1, 2, 3, 5];

/// Run the top-x recall-recovery sweep.
pub fn run() {
    let config = super::jem_config();
    let prep = PreparedDataset::generate(&super::spec(DatasetId::BSplendens), env_seed());
    let bench = prep.truth(config.ell, config.k as u64);
    let mapper = JemMapper::build(&prep.subjects, &config);
    let segments = make_segments(&prep.reads, config.ell);

    let max_x = *TOP_X.last().expect("non-empty");
    // For each segment, the deepest candidate list once; prefixes give x<max.
    let mut scratch = jem_core::MapScratch::new();
    let candidates: Vec<(String, Vec<u32>)> = segments
        .iter()
        .map(|seg| {
            let key = seg.key(&prep.reads);
            let top: Vec<u32> = mapper
                .map_segment_topk_with(&seg.seq, max_x, &mut scratch)
                .into_iter()
                .map(|(s, _)| s)
                .collect();
            (key, top)
        })
        .collect();

    let mappable: Vec<&(String, Vec<u32>)> = candidates
        .iter()
        .filter(|(key, _)| bench.subjects_of(key).is_some())
        .collect();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for &x in TOP_X {
        let recovered = mappable
            .iter()
            .filter(|(key, top)| {
                let truth = bench.subjects_of(key).expect("filtered to mappable");
                top.iter()
                    .take(x)
                    .any(|s| truth.contains(prep.subjects[*s as usize].id.as_str()))
            })
            .count();
        let recall = recovered as f64 / mappable.len().max(1) as f64;
        println!("top-{x}: recall {}", pct(recall));
        rows.push(vec![format!("top-{x}"), pct(recall)]);
        results.push(serde_json::json!({"x": x, "recall": recall}));
    }
    print_table(
        "Extension — recall when reporting top-x hits (B. splendens analogue)",
        &["Candidates", "Recall"],
        &rows,
    );
    save_json("ext_topk", &results);
}
