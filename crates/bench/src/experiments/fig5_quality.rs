//! Fig. 5 — precision and recall of JEM-mapper vs Mashmap on the seven
//! simulated inputs.

use crate::data::{env_seed, eval_jem, eval_mashmap, PreparedDataset};
use crate::output::{pct, print_table, save_json};

/// Run both mappers over every simulated input and print precision/recall.
pub fn run() {
    let jem_cfg = super::jem_config();
    let mash_cfg = super::mashmap_config();
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for spec in super::simulated_specs() {
        let prep = PreparedDataset::generate(&spec, env_seed());
        let bench = prep.truth(jem_cfg.ell, jem_cfg.k as u64);
        let jem = eval_jem(&prep, &jem_cfg, &bench);
        let mash = eval_mashmap(&prep, &mash_cfg, &bench);
        println!(
            "{}: JEM p={} r={} | Mashmap p={} r={}",
            prep.name(),
            pct(jem.precision),
            pct(jem.recall),
            pct(mash.precision),
            pct(mash.recall)
        );
        rows.push(vec![
            prep.name().to_string(),
            pct(jem.precision),
            pct(jem.recall),
            pct(mash.precision),
            pct(mash.recall),
        ]);
        results.push(jem);
        results.push(mash);
    }
    print_table(
        "Fig. 5 — mapping quality (PacBio HiFi simulated reads)",
        &[
            "Input",
            "JEM precision",
            "JEM recall",
            "Mashmap precision",
            "Mashmap recall",
        ],
        &rows,
    );
    save_json("fig5", &results);
}
