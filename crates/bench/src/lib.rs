//! # jem-bench — the experiment harness
//!
//! One module (and one thin binary) per table/figure of the paper's
//! evaluation section. Every experiment prints a Markdown table matching
//! the paper's rows/series and writes machine-readable JSON into
//! `results/` so EXPERIMENTS.md can be regenerated.
//!
//! Environment knobs (all optional):
//!
//! * `JEM_SCALE` — multiplies every dataset's genome length (default 1.0 =
//!   the scaled-analogue sizes of DESIGN.md §4). Use e.g. `0.1` for smoke
//!   runs.
//! * `JEM_SEED` — master seed (default 42).
//!
//! Run everything: `cargo run --release -p jem-bench --bin all_experiments`.

#![forbid(unsafe_code)]

pub mod data;
pub mod experiments;
pub mod output;

pub use data::{env_scale, env_seed, PreparedDataset, QualityResult};
