//! Runs the ext_topk extension/ablation study (see DESIGN.md).
fn main() {
    let t0 = std::time::Instant::now();
    jem_bench::experiments::ext_topk::run();
    eprintln!("[ext_topk done in {:.1}s]", t0.elapsed().as_secs_f64());
}
