//! Regenerates the paper's fig7 (see DESIGN.md experiment index).
fn main() {
    let t0 = std::time::Instant::now();
    jem_bench::experiments::fig7_breakdown::run();
    eprintln!("[fig7 done in {:.1}s]", t0.elapsed().as_secs_f64());
}
