//! Regenerates the paper's fig8 (see DESIGN.md experiment index).
fn main() {
    let t0 = std::time::Instant::now();
    jem_bench::experiments::fig8_comm::run();
    eprintln!("[fig8 done in {:.1}s]", t0.elapsed().as_secs_f64());
}
