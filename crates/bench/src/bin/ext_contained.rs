//! Runs the ext_contained extension/ablation study (see DESIGN.md).
fn main() {
    let t0 = std::time::Instant::now();
    jem_bench::experiments::ext_contained::run();
    eprintln!("[ext_contained done in {:.1}s]", t0.elapsed().as_secs_f64());
}
