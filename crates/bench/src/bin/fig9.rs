//! Regenerates the paper's fig9 (see DESIGN.md experiment index).
fn main() {
    let t0 = std::time::Instant::now();
    jem_bench::experiments::fig9_identity::run();
    eprintln!("[fig9 done in {:.1}s]", t0.elapsed().as_secs_f64());
}
