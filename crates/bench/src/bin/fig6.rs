//! Regenerates the paper's fig6 (see DESIGN.md experiment index).
fn main() {
    let t0 = std::time::Instant::now();
    jem_bench::experiments::fig6_trials::run();
    eprintln!("[fig6 done in {:.1}s]", t0.elapsed().as_secs_f64());
}
