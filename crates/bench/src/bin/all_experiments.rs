//! Runs every table/figure experiment in sequence.
fn main() {
    let t0 = std::time::Instant::now();
    println!(
        "# JEM-Mapper — full experiment suite (scale {})\n",
        jem_bench::env_scale()
    );
    jem_bench::experiments::table1_datasets::run();
    jem_bench::experiments::fig5_quality::run();
    jem_bench::experiments::fig6_trials::run();
    jem_bench::experiments::table2_scaling::run();
    jem_bench::experiments::fig7_breakdown::run();
    jem_bench::experiments::fig8_comm::run();
    jem_bench::experiments::fig9_identity::run();
    jem_bench::experiments::ext_topk::run();
    jem_bench::experiments::ext_contained::run();
    jem_bench::experiments::ablations::run();
    eprintln!(
        "[all experiments done in {:.1}s]",
        t0.elapsed().as_secs_f64()
    );
}
