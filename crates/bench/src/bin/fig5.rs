//! Regenerates the paper's fig5 (see DESIGN.md experiment index).
fn main() {
    let t0 = std::time::Instant::now();
    jem_bench::experiments::fig5_quality::run();
    eprintln!("[fig5 done in {:.1}s]", t0.elapsed().as_secs_f64());
}
