//! Regenerates the paper's table1 (see DESIGN.md experiment index).
fn main() {
    let t0 = std::time::Instant::now();
    jem_bench::experiments::table1_datasets::run();
    eprintln!("[table1 done in {:.1}s]", t0.elapsed().as_secs_f64());
}
