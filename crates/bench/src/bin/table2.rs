//! Regenerates the paper's table2 (see DESIGN.md experiment index).
fn main() {
    let t0 = std::time::Instant::now();
    jem_bench::experiments::table2_scaling::run();
    eprintln!("[table2 done in {:.1}s]", t0.elapsed().as_secs_f64());
}
