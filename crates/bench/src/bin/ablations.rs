//! Runs the ablations extension/ablation study (see DESIGN.md).
fn main() {
    let t0 = std::time::Instant::now();
    jem_bench::experiments::ablations::run();
    eprintln!("[ablations done in {:.1}s]", t0.elapsed().as_secs_f64());
}
