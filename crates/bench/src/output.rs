//! Markdown table printing and JSON result persistence.

use std::fs;
use std::path::PathBuf;

/// Print a Markdown table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Directory where experiment JSON lands (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("JEM_RESULTS_DIR").unwrap_or_else(|_| {
        format!(
            "{}/results",
            env!("CARGO_MANIFEST_DIR").trim_end_matches("/crates/bench")
        )
    });
    PathBuf::from(dir)
}

/// Persist a serializable result under `results/<name>.json`.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Format a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}
