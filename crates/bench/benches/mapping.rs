//! End-to-end mapping benchmarks: JEM-mapper vs the Mashmap baseline vs
//! classical MinHash on a shared simulated dataset — the per-query cost
//! structure behind Table II.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jem_baseline::{ClassicMinHashConfig, ClassicMinHashMapper, MashmapConfig, MashmapMapper};
use jem_core::{JemMapper, MapperConfig};
use jem_index::LazyHitCounter;
use jem_seq::SeqRecord;
use jem_sim::{
    contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
    HifiProfile,
};

struct Data {
    subjects: Vec<SeqRecord>,
    reads: Vec<SeqRecord>,
    segments: Vec<Vec<u8>>,
}

fn data() -> Data {
    let genome = Genome::random(300_000, 0.5, 50);
    let contigs = fragment_contigs(&genome, &ContigProfile::eukaryotic(), 51);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 3.0,
            ..Default::default()
        },
        52,
    );
    let subjects = contig_records(&contigs);
    let read_recs = read_records(&reads);
    let segments: Vec<Vec<u8>> = read_recs
        .iter()
        .filter(|r| r.seq.len() >= 1000)
        .map(|r| r.seq[..1000].to_vec())
        .collect();
    Data {
        subjects,
        reads: read_recs,
        segments,
    }
}

fn bench_index_build(c: &mut Criterion) {
    let d = data();
    let mut g = c.benchmark_group("index_build");
    g.sample_size(10);
    g.bench_function("jem", |b| {
        b.iter(|| JemMapper::build(&d.subjects, &MapperConfig::default()))
    });
    g.bench_function("mashmap_w10", |b| {
        b.iter(|| {
            MashmapMapper::build(
                d.subjects.clone(),
                &MashmapConfig {
                    k: 16,
                    w: 10,
                    ell: 1000,
                    min_shared: 4,
                },
            )
        })
    });
    g.finish();
}

fn bench_query_mapping(c: &mut Criterion) {
    let d = data();
    let jem = JemMapper::build(&d.subjects, &MapperConfig::default());
    let mash = MashmapMapper::build(
        d.subjects.clone(),
        &MashmapConfig {
            k: 16,
            w: 10,
            ell: 1000,
            min_shared: 4,
        },
    );
    let classic = ClassicMinHashMapper::build(&d.subjects, &ClassicMinHashConfig::default());

    let mut g = c.benchmark_group("map_segments");
    g.sample_size(10);
    g.throughput(Throughput::Elements(d.segments.len() as u64));
    g.bench_function("jem", |b| {
        b.iter(|| {
            let mut counter = jem.new_counter();
            d.segments
                .iter()
                .enumerate()
                .filter_map(|(q, s)| jem.map_segment(s, q as u64, &mut counter))
                .count()
        })
    });
    g.bench_function("mashmap", |b| {
        b.iter(|| {
            d.segments
                .iter()
                .filter_map(|s| mash.map_segment(s))
                .count()
        })
    });
    g.bench_function("classic_minhash", |b| {
        b.iter(|| {
            let mut counter = LazyHitCounter::new(classic.n_subjects());
            d.segments
                .iter()
                .enumerate()
                .filter_map(|(q, s)| classic.map_segment(s, q as u64, &mut counter))
                .count()
        })
    });
    g.finish();

    let mut g2 = c.benchmark_group("map_reads_e2e");
    g2.sample_size(10);
    g2.bench_function("jem_sequential", |b| b.iter(|| jem.map_reads(&d.reads)));
    g2.bench_function("jem_topk3_extension", |b| {
        b.iter(|| {
            d.segments
                .iter()
                .map(|s| jem.map_segment_topk(s, 3).len())
                .sum::<usize>()
        })
    });
    g2.finish();
}

criterion_group!(benches, bench_index_build, bench_query_mapping);
criterion_main!(benches);
