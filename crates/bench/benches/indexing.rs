//! Index-layer microbenchmarks and ablations:
//! * sketch-table build — sequential vs rayon;
//! * encode/decode (the Allgatherv payload path);
//! * lazy-update hit counter vs naive reset-per-query (the paper's §III-C
//!   implementation-note optimization).

use criterion::{criterion_group, criterion_main, Criterion};
use jem_index::{
    build_table_parallel, builder::build_table_sequential, HitCounter, LazyHitCounter,
    NaiveHitCounter, SketchTable,
};
use jem_sketch::{HashFamily, JemParams};

fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .scan(seed, |s, _| {
            *s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Some(b"ACGT"[((*s >> 33) % 4) as usize])
        })
        .collect()
}

fn subjects(n: usize, len: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| rng_seq(len, i as u64 + 1000)).collect()
}

fn bench_table_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_build");
    g.sample_size(10);
    let subs = subjects(200, 3_000);
    let params = JemParams::paper_default();
    let family = HashFamily::generate(30, 5);
    g.bench_function("sequential", |b| {
        b.iter(|| build_table_sequential(&subs, params, &family))
    });
    g.bench_function("rayon", |b| {
        b.iter(|| build_table_parallel(&subs, params, &family))
    });
    g.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_codec");
    g.sample_size(20);
    let subs = subjects(200, 3_000);
    let params = JemParams::paper_default();
    let family = HashFamily::generate(30, 5);
    let table = build_table_sequential(&subs, params, &family);
    let encoded = table.encode();
    g.bench_function("encode", |b| b.iter(|| table.encode()));
    g.bench_function("decode", |b| {
        b.iter(|| SketchTable::decode(&encoded, 30).unwrap())
    });
    g.bench_function("decode_into_merge", |b| {
        b.iter(|| {
            let mut t = SketchTable::new(30);
            t.decode_into(&encoded).unwrap();
            t
        })
    });
    g.finish();
}

/// The ablation the paper's implementation note motivates: lazy counters
/// avoid an O(n) reset between queries.
fn bench_hit_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("hit_counter");
    g.sample_size(20);
    let n_subjects = 100_000;
    let queries = 500u64;
    let hits_per_query = 20;
    let run = |counter: &mut dyn HitCounter| {
        let mut state = 99u64;
        for q in 0..queries {
            for _ in 0..hits_per_query {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                counter.record(q, (state % n_subjects as u64) as u32);
            }
            criterion::black_box(counter.best(q));
        }
    };
    g.bench_function("lazy", |b| {
        b.iter(|| {
            let mut counter = LazyHitCounter::new(n_subjects);
            run(&mut counter);
        })
    });
    g.bench_function("naive_reset", |b| {
        b.iter(|| {
            let mut counter = NaiveHitCounter::new(n_subjects);
            run(&mut counter);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table_build,
    bench_encode_decode,
    bench_hit_counters
);
criterion_main!(benches);
