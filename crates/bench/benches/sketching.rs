//! Sketching microbenchmarks and ablations:
//! * minimizer extraction — O(n) two-pass winnow vs quadratic reference;
//! * JEM sketch — sliding-min vs naive Algorithm 1 transliteration;
//! * JEM sketch vs classical MinHash at equal T.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jem_sketch::{
    classic_minhash_seq, jem::sketch_by_jem_naive, minimizers, minimizers_naive, sketch_by_jem,
    HashFamily, JemParams, MinimizerParams,
};

fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .scan(seed, |s, _| {
            *s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Some(b"ACGT"[((*s >> 33) % 4) as usize])
        })
        .collect()
}

fn bench_minimizers(c: &mut Criterion) {
    let mut g = c.benchmark_group("minimizers");
    g.sample_size(20);
    let params = MinimizerParams::paper_default();
    for n in [10_000usize, 100_000] {
        let seq = rng_seq(n, 1);
        g.throughput(Throughput::Bytes(n as u64));
        g.bench_with_input(BenchmarkId::new("fast", n), &seq, |b, s| {
            b.iter(|| minimizers(s, params))
        });
        if n <= 10_000 {
            g.bench_with_input(BenchmarkId::new("naive", n), &seq, |b, s| {
                b.iter(|| minimizers_naive(s, params))
            });
        }
    }
    g.finish();
}

fn bench_jem_sketch(c: &mut Criterion) {
    let mut g = c.benchmark_group("jem_sketch");
    g.sample_size(20);
    let params = JemParams::paper_default();
    let family = HashFamily::generate(30, 7);
    for n in [10_000usize, 100_000] {
        let seq = rng_seq(n, 2);
        g.throughput(Throughput::Bytes(n as u64));
        g.bench_with_input(BenchmarkId::new("sliding_min", n), &seq, |b, s| {
            b.iter(|| sketch_by_jem(s, params, &family))
        });
        if n <= 10_000 {
            g.bench_with_input(BenchmarkId::new("naive_alg1", n), &seq, |b, s| {
                b.iter(|| sketch_by_jem_naive(s, params, &family))
            });
        }
    }
    g.finish();
}

fn bench_schemes(c: &mut Criterion) {
    use jem_sketch::{closed_syncmers, SketchScheme, SyncmerParams};
    let mut g = c.benchmark_group("position_schemes");
    g.sample_size(20);
    let n = 100_000usize;
    let seq = rng_seq(n, 5);
    g.throughput(Throughput::Bytes(n as u64));
    // Density-matched: minimizer w=5 vs closed syncmer s=11 at k=16.
    let mp = MinimizerParams::new(16, 5).unwrap();
    let sp = SyncmerParams::new(16, 11).unwrap();
    g.bench_function("minimizer_w5", |b| b.iter(|| minimizers(&seq, mp)));
    g.bench_function("closed_syncmer_s11", |b| {
        b.iter(|| closed_syncmers(&seq, sp))
    });
    let _ = SketchScheme::Minimizer { w: 5 }; // scheme type exercised in mapping bench
    g.finish();
}

fn bench_jem_vs_classic(c: &mut Criterion) {
    let mut g = c.benchmark_group("jem_vs_classic_minhash");
    g.sample_size(20);
    let n = 50_000usize;
    let seq = rng_seq(n, 3);
    let family = HashFamily::generate(30, 9);
    let params = JemParams::paper_default();
    g.throughput(Throughput::Bytes(n as u64));
    g.bench_function("jem_t30", |b| {
        b.iter(|| sketch_by_jem(&seq, params, &family))
    });
    g.bench_function("classic_t30", |b| {
        b.iter(|| classic_minhash_seq(&seq, 16, &family))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_minimizers,
    bench_jem_sketch,
    bench_schemes,
    bench_jem_vs_classic
);
criterion_main!(benches);
