//! Alignment microbenchmarks: global vs banded vs fitting vs local on
//! HiFi-like similar pairs (the Fig. 9 identity-computation cost).

use criterion::{criterion_group, criterion_main, Criterion};
use jem_eval::{align_fitting, align_global, align_local, banded_global};

fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
    (0..n)
        .scan(seed, |s, _| {
            *s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Some(b"ACGT"[((*s >> 33) % 4) as usize])
        })
        .collect()
}

/// Mutate ~0.5% of bases (HiFi-like divergence).
fn diverge(seq: &[u8], seed: u64) -> Vec<u8> {
    let mut out = seq.to_vec();
    let mut s = seed;
    for i in (0..out.len()).step_by(200) {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        out[i] = b"ACGT"[((s >> 33) % 4) as usize];
    }
    out
}

fn bench_alignment(c: &mut Criterion) {
    let mut g = c.benchmark_group("alignment_1kb_pair");
    g.sample_size(20);
    let a = rng_seq(1_000, 1);
    let b = diverge(&a, 2);
    g.bench_function("global", |bch| bch.iter(|| align_global(&a, &b)));
    g.bench_function("banded_32", |bch| bch.iter(|| banded_global(&a, &b, 32)));
    g.bench_function("local_sw", |bch| bch.iter(|| align_local(&a, &b)));
    g.finish();

    // The Fig. 9 shape: a 1 kb segment against a 3 kb contig.
    let mut g2 = c.benchmark_group("alignment_segment_vs_contig");
    g2.sample_size(10);
    let contig = rng_seq(3_000, 3);
    let segment = diverge(&contig[800..1800], 4);
    g2.bench_function("fitting", |bch| {
        bch.iter(|| align_fitting(&segment, &contig))
    });
    g2.bench_function("local_sw", |bch| {
        bch.iter(|| align_local(&segment, &contig))
    });
    g2.finish();
}

criterion_group!(benches, bench_alignment);
criterion_main!(benches);
