//! End-to-end integration: simulate → map → evaluate, across all drivers.

use jem_core::{map_reads_parallel, mapping_pairs, run_distributed, JemMapper, MapperConfig};
use jem_eval::{Benchmark, MappingMetrics};
use jem_psim::{CostModel, ExecMode};
use jem_seq::SeqRecord;
use jem_sim::{
    contig_records, fragment_contigs, read_records, simulate_hifi, Contig, ContigProfile, Genome,
    HifiProfile, SegmentEnd, SimulatedRead,
};

struct World {
    contigs: Vec<Contig>,
    reads: Vec<SimulatedRead>,
    subjects: Vec<SeqRecord>,
    query_reads: Vec<SeqRecord>,
}

fn world(seed: u64) -> World {
    let genome = Genome::random(150_000, 0.5, seed);
    let contigs = fragment_contigs(&genome, &ContigProfile::eukaryotic(), seed + 1);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 4.0,
            ..Default::default()
        },
        seed + 2,
    );
    let subjects = contig_records(&contigs);
    let query_reads = read_records(&reads);
    World {
        contigs,
        reads,
        subjects,
        query_reads,
    }
}

fn truth(w: &World, config: &MapperConfig) -> Benchmark {
    let mut queries = Vec::new();
    for r in &w.reads {
        let (s, e) = r.segment_ref_range(SegmentEnd::Prefix, config.ell);
        queries.push((format!("{}/prefix", r.id), (s as u64, e as u64)));
        if r.len() > config.ell {
            let (s, e) = r.segment_ref_range(SegmentEnd::Suffix, config.ell);
            queries.push((format!("{}/suffix", r.id), (s as u64, e as u64)));
        }
    }
    let coords: Vec<(String, (u64, u64))> = w
        .contigs
        .iter()
        .map(|c| (c.id.clone(), (c.ref_start as u64, c.ref_end as u64)))
        .collect();
    Benchmark::from_coordinates(&queries, &coords, config.k as u64)
}

#[test]
fn jem_quality_on_simulated_data() {
    let w = world(100);
    let config = MapperConfig::default();
    let mapper = JemMapper::build(&w.subjects, &config);
    let mappings = mapper.map_reads(&w.query_reads);
    let bench = truth(&w, &config);
    let m = MappingMetrics::classify(&mapping_pairs(&mappings, &w.query_reads, &mapper), &bench);
    assert!(
        m.precision() > 0.95,
        "precision {:.3} below the paper's band",
        m.precision()
    );
    assert!(
        m.recall() > 0.90,
        "recall {:.3} below the paper's band",
        m.recall()
    );
    assert!(
        m.recall() <= m.precision() + 1e-9,
        "recall must be upper-bounded by precision (paper §IV-B)"
    );
}

#[test]
fn all_three_drivers_agree() {
    let w = world(200);
    let config = MapperConfig {
        trials: 10,
        ..Default::default()
    };
    let mapper = JemMapper::build(&w.subjects, &config);
    let mut sequential = mapper.map_reads(&w.query_reads);
    sequential.sort_unstable_by_key(|m| (m.read_idx, m.end));
    let parallel = map_reads_parallel(&mapper, &w.query_reads);
    assert_eq!(parallel, sequential, "rayon driver must equal sequential");
    for p in [1, 4, 16] {
        let distributed = run_distributed(
            &w.subjects,
            &w.query_reads,
            &config,
            p,
            CostModel::ethernet_10g(),
            ExecMode::Sequential,
        );
        assert_eq!(
            distributed.mappings, sequential,
            "distributed p={p} must equal sequential"
        );
    }
}

#[test]
fn scaling_report_is_sane() {
    // Enough query work per rank that timing noise cannot flip the
    // comparison (release-mode per-segment times are microseconds).
    let genome = Genome::random(400_000, 0.5, 301);
    let contigs = fragment_contigs(&genome, &ContigProfile::eukaryotic(), 302);
    let reads = read_records(&simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 8.0,
            ..Default::default()
        },
        303,
    ));
    let subjects = contig_records(&contigs);
    let config = MapperConfig {
        trials: 10,
        ..Default::default()
    };
    let run = |p| {
        run_distributed(
            &subjects,
            &reads,
            &config,
            p,
            CostModel::ethernet_10g(),
            ExecMode::Sequential,
        )
    };
    let _ = run(2); // warm-up (page cache / allocator)
    let o2 = run(2);
    let o16 = run(16);
    // Query critical path shrinks substantially with 8x the ranks.
    assert!(
        o16.report.step_secs("query map") < o2.report.step_secs("query map") * 0.6,
        "query map: p=16 {} vs p=2 {}",
        o16.report.step_secs("query map"),
        o2.report.step_secs("query map")
    );
    // Throughput grows with p.
    assert!(o16.query_throughput() > o2.query_throughput() * 1.5);
    // Communication exists but is a minority share.
    assert!(o16.report.comm_fraction() > 0.0);
    assert!(o16.report.comm_fraction() < 0.5);
}

#[test]
fn deterministic_across_runs() {
    let w = world(400);
    let config = MapperConfig::default();
    let a = JemMapper::build(&w.subjects, &config).map_reads(&w.query_reads);
    let b = JemMapper::build(&w.subjects, &config).map_reads(&w.query_reads);
    assert_eq!(a, b);
}

#[test]
fn segments_map_to_overlapping_contigs() {
    // Every correct mapping's contig should actually overlap the segment's
    // genome region (spot check of the whole pipeline's coordinate logic).
    let w = world(500);
    let config = MapperConfig::default();
    let mapper = JemMapper::build(&w.subjects, &config);
    let mappings = mapper.map_reads(&w.query_reads);
    assert!(!mappings.is_empty());
    let bench = truth(&w, &config);
    let pairs = mapping_pairs(&mappings, &w.query_reads, &mapper);
    let correct = pairs.iter().filter(|(q, s)| bench.contains(q, s)).count();
    assert!(
        correct * 100 >= pairs.len() * 95,
        "{correct}/{} correct",
        pairs.len()
    );
}
