//! Integration of the assembly substrate with the mappers: the paper's
//! full data-preparation path (short reads → DBG assembly → contigs), plus
//! coordinate recovery with the seed-chain mapper (the Minimap2 role).

use jem_baseline::{SeedChainConfig, SeedChainMapper};
use jem_core::{JemMapper, MapperConfig};
use jem_dbg::{assemble, AssemblyParams};
use jem_seq::SeqRecord;
use jem_sim::{
    read_records, simulate_hifi, simulate_illumina, Genome, HifiProfile, IlluminaProfile,
};

fn assembled_world() -> (Genome, Vec<SeqRecord>) {
    let genome = Genome::random(120_000, 0.5, 777);
    let short = simulate_illumina(&genome, &IlluminaProfile::default(), 778);
    let read_seqs: Vec<Vec<u8>> = short.into_iter().map(|r| r.seq).collect();
    let contigs = assemble(
        &read_seqs,
        &AssemblyParams {
            k: 31,
            min_abundance: 3,
            min_contig_len: 500,
            tip_len: 93,
        },
    );
    (genome, contigs)
}

#[test]
fn assembly_covers_most_of_the_genome() {
    let (genome, contigs) = assembled_world();
    assert!(!contigs.is_empty());
    let total: usize = contigs.iter().map(|c| c.seq.len()).sum();
    assert!(
        total as f64 > genome.len() as f64 * 0.9,
        "assembly covers only {total}/{} bases",
        genome.len()
    );
}

#[test]
fn assembled_contigs_remap_to_reference_coordinates() {
    // The benchmark-construction path: map each assembled contig back to
    // the reference with the seed-chain mapper and check the recovered
    // span is plausible (the paper does this with Minimap2).
    let (genome, contigs) = assembled_world();
    let reference = vec![SeqRecord::new("ref", genome.seq.clone())];
    let mapper = SeedChainMapper::build(reference, &SeedChainConfig::default());
    let inspected: Vec<_> = contigs.iter().take(10).collect();
    let mut mapped = 0;
    for c in &inspected {
        if let Some(chain) = mapper.map(&c.seq) {
            mapped += 1;
            let span = (chain.s_end - chain.s_start) as f64;
            assert!(
                span > c.seq.len() as f64 * 0.8 && span < c.seq.len() as f64 * 1.2,
                "recovered span {span} vs contig length {}",
                c.seq.len()
            );
        }
    }
    assert!(
        mapped * 10 >= inspected.len() * 8,
        "only {mapped}/{} contigs remapped",
        inspected.len()
    );
}

#[test]
fn hifi_ends_map_to_assembled_contigs() {
    let (genome, contigs) = assembled_world();
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 3.0,
            ..Default::default()
        },
        779,
    );
    let query_reads = read_records(&reads);
    let config = MapperConfig::default();
    let n_contigs = contigs.len();
    let mapper = JemMapper::build(&contigs, &config);
    let mappings = mapper.map_reads(&query_reads);
    let n_segments: usize = query_reads
        .iter()
        .map(|r| if r.seq.len() > config.ell { 2 } else { 1 })
        .sum();
    assert!(
        mappings.len() * 10 >= n_segments * 8,
        "only {}/{} segments mapped against {n_contigs} assembled contigs",
        mappings.len(),
        n_segments
    );
    // Strong support: HiFi segments over error-filtered contigs should
    // collide on most trials.
    let strong = mappings
        .iter()
        .filter(|m| m.hits as usize >= config.trials / 2)
        .count();
    assert!(
        strong * 10 >= mappings.len() * 9,
        "{strong}/{} strong",
        mappings.len()
    );
}
