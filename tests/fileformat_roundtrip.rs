//! Disk round-trips: the mapping pipeline driven through FASTA/FASTQ files
//! rather than in-memory records (the shape a real user runs).

use jem_core::{JemMapper, MapperConfig};
use jem_seq::{FastaReader, FastaWriter, FastqReader, FastqRecord, FastqWriter, SeqRecord};
use jem_sim::{
    contig_records, fragment_contigs, simulate_hifi, ContigProfile, Genome, HifiProfile,
};

#[test]
fn mapping_through_fasta_files_matches_in_memory() {
    let dir = std::env::temp_dir().join(format!("jem_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let genome = Genome::random(80_000, 0.5, 1234);
    let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 1235);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 2.0,
            ..Default::default()
        },
        1236,
    );
    let subjects = contig_records(&contigs);

    // Write contigs as FASTA, reads as FASTQ.
    let contig_path = dir.join("contigs.fa");
    {
        let mut w = FastaWriter::create(&contig_path).unwrap();
        w.write_all_records(&subjects).unwrap();
        w.flush().unwrap();
    }
    let reads_path = dir.join("reads.fq");
    {
        let mut w = FastqWriter::create(&reads_path).unwrap();
        for r in &reads {
            w.write_record(&FastqRecord::with_uniform_quality(
                r.id.clone(),
                r.seq.clone(),
                b'K',
            ))
            .unwrap();
        }
        w.flush().unwrap();
    }

    // Read back.
    let subjects_back: Vec<SeqRecord> = FastaReader::from_path(&contig_path)
        .unwrap()
        .read_all()
        .unwrap();
    let reads_back: Vec<SeqRecord> = FastqReader::from_path(&reads_path)
        .unwrap()
        .read_all()
        .unwrap()
        .into_iter()
        .map(FastqRecord::into_seq_record)
        .collect();
    assert_eq!(subjects_back.len(), subjects.len());
    assert_eq!(reads_back.len(), reads.len());

    // Map both ways; results must be identical.
    let config = MapperConfig {
        trials: 8,
        ..Default::default()
    };
    let mem_reads: Vec<SeqRecord> = reads
        .iter()
        .map(|r| SeqRecord::new(r.id.clone(), r.seq.clone()))
        .collect();
    let from_memory = JemMapper::build(&subjects, &config).map_reads(&mem_reads);
    let from_disk = JemMapper::build(&subjects_back, &config).map_reads(&reads_back);
    assert_eq!(from_memory, from_disk);

    std::fs::remove_dir_all(&dir).ok();
}
