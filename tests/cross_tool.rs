//! Cross-tool integration: JEM-mapper vs the baselines on shared data.

use jem_baseline::{
    mashmap::mapping_key, ClassicMinHashConfig, ClassicMinHashMapper, MashmapConfig, MashmapMapper,
};
use jem_core::{mapping_pairs, JemMapper, MapperConfig, Mapping};
use jem_eval::{Benchmark, MappingMetrics};
use jem_seq::SeqRecord;
use jem_sim::{
    contig_records, fragment_contigs, read_records, simulate_hifi, Contig, ContigProfile, Genome,
    HifiProfile, SegmentEnd, SimulatedRead,
};

fn world() -> (
    Vec<Contig>,
    Vec<SimulatedRead>,
    Vec<SeqRecord>,
    Vec<SeqRecord>,
) {
    let genome = Genome::random(200_000, 0.5, 900);
    let contigs = fragment_contigs(&genome, &ContigProfile::eukaryotic(), 901);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 4.0,
            ..Default::default()
        },
        902,
    );
    let subjects = contig_records(&contigs);
    let query_reads = read_records(&reads);
    (contigs, reads, subjects, query_reads)
}

fn truth(contigs: &[Contig], reads: &[SimulatedRead], ell: usize, k: u64) -> Benchmark {
    let mut queries = Vec::new();
    for r in reads {
        let (s, e) = r.segment_ref_range(SegmentEnd::Prefix, ell);
        queries.push((format!("{}/prefix", r.id), (s as u64, e as u64)));
        if r.len() > ell {
            let (s, e) = r.segment_ref_range(SegmentEnd::Suffix, ell);
            queries.push((format!("{}/suffix", r.id), (s as u64, e as u64)));
        }
    }
    let coords: Vec<(String, (u64, u64))> = contigs
        .iter()
        .map(|c| (c.id.clone(), (c.ref_start as u64, c.ref_end as u64)))
        .collect();
    Benchmark::from_coordinates(&queries, &coords, k)
}

fn pairs_of(
    mappings: &[Mapping],
    reads: &[SeqRecord],
    name: impl Fn(u32) -> String,
) -> Vec<(String, String)> {
    mappings
        .iter()
        .map(|m| (mapping_key(m, reads), name(m.subject)))
        .collect()
}

#[test]
fn jem_and_mashmap_both_high_quality() {
    let (contigs, reads, subjects, query_reads) = world();
    let bench = truth(&contigs, &reads, 1000, 16);

    let jem_cfg = MapperConfig::default();
    let jem = JemMapper::build(&subjects, &jem_cfg);
    let jem_pairs = mapping_pairs(&jem.map_reads(&query_reads), &query_reads, &jem);
    let jem_m = MappingMetrics::classify(&jem_pairs, &bench);

    let mash_cfg = MashmapConfig {
        k: 16,
        w: 10,
        ell: 1000,
        min_shared: 4,
    };
    let mash = MashmapMapper::build(subjects.clone(), &mash_cfg);
    let mash_pairs = pairs_of(&mash.map_reads(&query_reads), &query_reads, |id| {
        mash.subject_name(id).to_string()
    });
    let mash_m = MappingMetrics::classify(&mash_pairs, &bench);

    assert!(
        jem_m.precision() > 0.95,
        "JEM precision {:.3}",
        jem_m.precision()
    );
    assert!(
        mash_m.precision() > 0.95,
        "Mashmap precision {:.3}",
        mash_m.precision()
    );
    assert!(jem_m.recall() > 0.90, "JEM recall {:.3}", jem_m.recall());
    assert!(
        mash_m.recall() > 0.90,
        "Mashmap recall {:.3}",
        mash_m.recall()
    );
}

#[test]
fn jem_beats_classical_minhash_at_low_trials() {
    // The paper's Fig. 6 claim: at the same small T, JEM's interval
    // sketches recover far more hits than whole-sequence MinHash.
    let (contigs, reads, subjects, query_reads) = world();
    let bench = truth(&contigs, &reads, 1000, 16);
    let t = 10;

    let jem_cfg = MapperConfig {
        trials: t,
        ..Default::default()
    };
    let jem = JemMapper::build(&subjects, &jem_cfg);
    let jem_m = MappingMetrics::classify(
        &mapping_pairs(&jem.map_reads(&query_reads), &query_reads, &jem),
        &bench,
    );

    let classic_cfg = ClassicMinHashConfig {
        k: 16,
        trials: t,
        ell: 1000,
        seed: jem_cfg.seed,
    };
    let classic = ClassicMinHashMapper::build(&subjects, &classic_cfg);
    let classic_m = MappingMetrics::classify(
        &pairs_of(&classic.map_reads(&query_reads), &query_reads, |id| {
            subjects[id as usize].id.clone()
        }),
        &bench,
    );

    assert!(
        jem_m.recall() > classic_m.recall() + 0.05,
        "JEM recall {:.3} must clearly beat classical MinHash {:.3} at T={t}",
        jem_m.recall(),
        classic_m.recall()
    );
}

#[test]
fn classical_minhash_converges_with_many_trials() {
    let (contigs, reads, subjects, query_reads) = world();
    let bench = truth(&contigs, &reads, 1000, 16);
    let recall_at = |t: usize| {
        let cfg = ClassicMinHashConfig {
            k: 16,
            trials: t,
            ell: 1000,
            seed: 1,
        };
        let mapper = ClassicMinHashMapper::build(&subjects, &cfg);
        MappingMetrics::classify(
            &pairs_of(&mapper.map_reads(&query_reads), &query_reads, |id| {
                subjects[id as usize].id.clone()
            }),
            &bench,
        )
        .recall()
    };
    let low = recall_at(5);
    let high = recall_at(80);
    assert!(
        high > low,
        "more trials must improve classical MinHash ({low:.3} -> {high:.3})"
    );
    assert!(
        high > 0.8,
        "classical MinHash should eventually converge, got {high:.3}"
    );
}
