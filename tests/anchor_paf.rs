//! Stage-2 integration: the anchor pipeline must be strictly additive over
//! the legacy stage-1 drivers (byte-identical TSV), its PAF output must
//! survive the eval parser's structural validation, and the placements
//! must score accurately against simulated truth coordinates.

use jem_anchor::{write_paf, AnchorPipeline, Refiner};
use jem_core::{map_reads_parallel, write_mappings_tsv, JemMapper, MapperConfig};
use jem_eval::{parse_paf, PafAccuracy};
use jem_seq::SeqRecord;
use jem_sim::{
    contig_records, fragment_contigs, read_records, simulate_hifi, Contig, ContigProfile, Genome,
    HifiProfile, SegmentEnd, SimulatedRead,
};

struct World {
    contigs: Vec<Contig>,
    reads: Vec<SimulatedRead>,
    subjects: Vec<SeqRecord>,
    query_reads: Vec<SeqRecord>,
    config: MapperConfig,
}

fn world(seed: u64) -> World {
    let genome = Genome::random(80_000, 0.5, seed);
    let contigs = fragment_contigs(
        &genome,
        &ContigProfile {
            error_rate: 0.0,
            ..ContigProfile::small_genome()
        },
        seed + 1,
    );
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 2.0,
            mean_len: 4_000,
            std_len: 800,
            min_len: 1_000,
            error_rate: 0.001,
        },
        seed + 2,
    );
    let subjects = contig_records(&contigs);
    let query_reads = read_records(&reads);
    World {
        contigs,
        reads,
        subjects,
        query_reads,
        config: MapperConfig {
            k: 12,
            w: 10,
            trials: 12,
            ell: 300,
            seed: 7,
        },
    }
}

fn tsv_bytes(mappings: &[jem_core::Mapping], reads: &[SeqRecord], mapper: &JemMapper) -> Vec<u8> {
    let mut buf = Vec::new();
    write_mappings_tsv(&mut buf, mappings, reads, mapper).unwrap();
    buf
}

#[test]
fn tsv_output_is_byte_identical_with_and_without_stage2() {
    let w = world(41);
    let mapper = JemMapper::build(&w.subjects, &w.config);
    let refiner = Refiner::new(mapper.scheme(), w.config.k, w.subjects.clone());
    let pipeline = AnchorPipeline::new(&mapper, &refiner);

    // Sequential: the fused driver's stage-1 view vs the legacy driver.
    let legacy = mapper.map_reads(&w.query_reads);
    let fused = pipeline.run(&w.query_reads);
    assert_eq!(
        tsv_bytes(&fused.mappings, &w.query_reads, &mapper),
        tsv_bytes(&legacy, &w.query_reads, &mapper),
        "stage 2 must not perturb the legacy TSV byte stream"
    );
    assert!(!fused.paf.is_empty(), "no segment refined at all");

    // Parallel: same equivalence against the legacy rayon driver.
    let legacy_par = map_reads_parallel(&mapper, &w.query_reads);
    let fused_par = pipeline.run_parallel(&w.query_reads, None);
    assert_eq!(
        tsv_bytes(&fused_par.mappings, &w.query_reads, &mapper),
        tsv_bytes(&legacy_par, &w.query_reads, &mapper),
    );
    // And the parallel driver's full output matches the sequential one.
    assert_eq!(fused_par, fused);
}

#[test]
fn paf_output_parses_and_scores_accurately_against_truth() {
    let w = world(42);
    let mapper = JemMapper::build(&w.subjects, &w.config);
    let refiner = Refiner::new(mapper.scheme(), w.config.k, w.subjects.clone());
    let out = AnchorPipeline::new(&mapper, &refiner).run(&w.query_reads);

    // Serialize and re-parse: every emitted line must clear the eval
    // parser's structural validation (column count, strand, intervals).
    let mut buf = Vec::new();
    write_paf(&mut buf, &out.paf, &w.query_reads, mapper.subject_names()).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let records = parse_paf(&text).unwrap_or_else(|e| panic!("invalid PAF emitted: {e}"));
    assert_eq!(records.len(), out.paf.len());

    // Truth coordinates exactly as `jem simulate` writes them.
    let mut queries = Vec::new();
    for r in &w.reads {
        let (s, e) = r.segment_ref_range(SegmentEnd::Prefix, w.config.ell);
        queries.push((format!("{}/prefix", r.id), (s as u64, e as u64)));
        if r.len() > w.config.ell {
            let (s, e) = r.segment_ref_range(SegmentEnd::Suffix, w.config.ell);
            queries.push((format!("{}/suffix", r.id), (s as u64, e as u64)));
        }
    }
    let coords: Vec<(String, (u64, u64))> = w
        .contigs
        .iter()
        .map(|c| (c.id.clone(), (c.ref_start as u64, c.ref_end as u64)))
        .collect();

    let acc = PafAccuracy::classify(&records, &queries, &coords, w.config.k as u64, 100);
    assert_eq!(acc.unknown_query, 0, "every qname must join the truth");
    assert!(
        acc.accuracy() > 0.8,
        "coordinate accuracy {:.3} too low: {acc:?}",
        acc.accuracy()
    );
    assert!(
        acc.mean_offset() < 50.0,
        "mean start offset {:.1} too loose: {acc:?}",
        acc.mean_offset()
    );
}
